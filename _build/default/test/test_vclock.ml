(* Unit and property tests for Vclock: lattice laws, order laws,
   serialization round-trips. *)

let vc = Vclock.of_list

let check_clock msg expected actual =
  Alcotest.(check (list int)) msg (Vclock.to_list expected) (Vclock.to_list actual)

(* {1 Unit tests} *)

let test_zero () =
  let z = Vclock.zero 3 in
  Alcotest.(check int) "dim" 3 (Vclock.dim z);
  Alcotest.(check (list int)) "components" [ 0; 0; 0 ] (Vclock.to_list z);
  Alcotest.(check int) "sum" 0 (Vclock.sum z)

let test_zero_invalid () =
  Alcotest.check_raises "zero 0" (Invalid_argument "Vclock: dimension must be positive")
    (fun () -> ignore (Vclock.zero 0));
  Alcotest.check_raises "zero -1" (Invalid_argument "Vclock: dimension must be positive")
    (fun () -> ignore (Vclock.zero (-1)))

let test_get_set () =
  let v = vc [ 1; 2; 3 ] in
  Alcotest.(check int) "get 0" 1 (Vclock.get v 0);
  Alcotest.(check int) "get 2" 3 (Vclock.get v 2);
  let w = Vclock.set v 1 9 in
  check_clock "set" (vc [ 1; 9; 3 ]) w;
  check_clock "original untouched" (vc [ 1; 2; 3 ]) v

let test_get_out_of_bounds () =
  let v = vc [ 1; 2 ] in
  Alcotest.check_raises "get -1" (Invalid_argument "Vclock.get: index out of bounds")
    (fun () -> ignore (Vclock.get v (-1)));
  Alcotest.check_raises "get 2" (Invalid_argument "Vclock.get: index out of bounds")
    (fun () -> ignore (Vclock.get v 2))

let test_set_negative () =
  Alcotest.check_raises "set negative" (Invalid_argument "Vclock.set: negative component")
    (fun () -> ignore (Vclock.set (vc [ 0 ]) 0 (-1)))

let test_inc () =
  let v = vc [ 0; 5 ] in
  check_clock "inc 0" (vc [ 1; 5 ]) (Vclock.inc v 0);
  check_clock "inc 1" (vc [ 0; 6 ]) (Vclock.inc v 1);
  check_clock "inc twice" (vc [ 2; 5 ]) (Vclock.inc (Vclock.inc v 0) 0)

let test_max () =
  check_clock "max" (vc [ 3; 2; 5 ]) (Vclock.max (vc [ 3; 0; 5 ]) (vc [ 1; 2; 4 ]));
  check_clock "max idempotent" (vc [ 1; 2 ]) (Vclock.max (vc [ 1; 2 ]) (vc [ 1; 2 ]))

let test_max_dim_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Vclock: dimension mismatch")
    (fun () -> ignore (Vclock.max (vc [ 1 ]) (vc [ 1; 2 ])))

let test_leq_lt () =
  Alcotest.(check bool) "leq refl" true (Vclock.leq (vc [ 1; 2 ]) (vc [ 1; 2 ]));
  Alcotest.(check bool) "leq" true (Vclock.leq (vc [ 1; 2 ]) (vc [ 2; 2 ]));
  Alcotest.(check bool) "not leq" false (Vclock.leq (vc [ 1; 3 ]) (vc [ 2; 2 ]));
  Alcotest.(check bool) "lt strict" true (Vclock.lt (vc [ 1; 2 ]) (vc [ 1; 3 ]));
  Alcotest.(check bool) "lt not refl" false (Vclock.lt (vc [ 1; 2 ]) (vc [ 1; 2 ]))

let test_concurrent () =
  Alcotest.(check bool) "concurrent" true (Vclock.concurrent (vc [ 1; 0 ]) (vc [ 0; 1 ]));
  Alcotest.(check bool) "ordered not concurrent" false
    (Vclock.concurrent (vc [ 1; 0 ]) (vc [ 1; 1 ]));
  Alcotest.(check bool) "equal not concurrent" false
    (Vclock.concurrent (vc [ 1; 1 ]) (vc [ 1; 1 ]))

let test_of_array_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Vclock: dimension must be positive")
    (fun () -> ignore (Vclock.of_array [||]));
  Alcotest.check_raises "negative" (Invalid_argument "Vclock.of_array: negative component")
    (fun () -> ignore (Vclock.of_array [| 1; -2 |]))

let test_of_array_copies () =
  let a = [| 1; 2 |] in
  let v = Vclock.of_array a in
  a.(0) <- 99;
  Alcotest.(check int) "insulated from mutation" 1 (Vclock.get v 0);
  let b = Vclock.to_array v in
  b.(1) <- 42;
  Alcotest.(check int) "to_array copies" 2 (Vclock.get v 1)

let test_to_string () =
  Alcotest.(check string) "print" "(1,0,2)" (Vclock.to_string (vc [ 1; 0; 2 ]));
  Alcotest.(check string) "singleton" "(7)" (Vclock.to_string (vc [ 7 ]))

let test_of_string () =
  check_clock "parse" (vc [ 1; 0; 2 ]) (Vclock.of_string "(1,0,2)");
  check_clock "parse spaces" (vc [ 3; 4 ]) (Vclock.of_string "(3, 4)")

let test_of_string_invalid () =
  let expect s =
    match Vclock.of_string s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "of_string %S should have raised" s
  in
  List.iter expect [ ""; "1,2"; "(1,2"; "(a,b)"; "()" ]

let test_sum () =
  Alcotest.(check int) "sum" 6 (Vclock.sum (vc [ 1; 2; 3 ]))

(* {1 Properties} *)

let clock_gen n =
  QCheck.Gen.(array_size (return n) (int_bound 20) >|= Vclock.of_array)

let pair_gen n = QCheck.Gen.(pair (clock_gen n) (clock_gen n))
let triple_gen n = QCheck.Gen.(triple (clock_gen n) (clock_gen n) (clock_gen n))

let arb gen = QCheck.make ~print:(fun v -> Vclock.to_string v) gen
let arb_pair n = QCheck.make ~print:(fun (a, b) -> Vclock.to_string a ^ " " ^ Vclock.to_string b) (pair_gen n)

let arb_triple n =
  QCheck.make
    ~print:(fun (a, b, c) ->
      String.concat " " [ Vclock.to_string a; Vclock.to_string b; Vclock.to_string c ])
    (triple_gen n)

let prop_max_upper_bound =
  QCheck.Test.make ~name:"max is an upper bound" ~count:500 (arb_pair 4) (fun (a, b) ->
      let m = Vclock.max a b in
      Vclock.leq a m && Vclock.leq b m)

let prop_max_least =
  QCheck.Test.make ~name:"max is the least upper bound" ~count:500 (arb_triple 4)
    (fun (a, b, c) ->
      let m = Vclock.max a b in
      if Vclock.leq a c && Vclock.leq b c then Vclock.leq m c else true)

let prop_max_commutative =
  QCheck.Test.make ~name:"max commutative" ~count:500 (arb_pair 4) (fun (a, b) ->
      Vclock.equal (Vclock.max a b) (Vclock.max b a))

let prop_max_associative =
  QCheck.Test.make ~name:"max associative" ~count:500 (arb_triple 4) (fun (a, b, c) ->
      Vclock.equal (Vclock.max a (Vclock.max b c)) (Vclock.max (Vclock.max a b) c))

let prop_leq_antisymmetric =
  QCheck.Test.make ~name:"leq antisymmetric" ~count:500 (arb_pair 3) (fun (a, b) ->
      if Vclock.leq a b && Vclock.leq b a then Vclock.equal a b else true)

let prop_leq_transitive =
  QCheck.Test.make ~name:"leq transitive" ~count:500 (arb_triple 3) (fun (a, b, c) ->
      if Vclock.leq a b && Vclock.leq b c then Vclock.leq a c else true)

let prop_trichotomy =
  QCheck.Test.make ~name:"exactly one of <, >, =, || holds" ~count:500 (arb_pair 3)
    (fun (a, b) ->
      let cases =
        [ Vclock.lt a b; Vclock.lt b a; Vclock.equal a b; Vclock.concurrent a b ]
      in
      List.length (List.filter (fun x -> x) cases) = 1)

let prop_roundtrip =
  QCheck.Test.make ~name:"of_string (to_string v) = v" ~count:500 (arb (clock_gen 5))
    (fun v -> Vclock.equal v (Vclock.of_string (Vclock.to_string v)))

let prop_inc_strictly_increases =
  QCheck.Test.make ~name:"inc strictly increases" ~count:500 (arb (clock_gen 4)) (fun v ->
      Vclock.lt v (Vclock.inc v 2))

let prop_sum_of_max_bounded =
  QCheck.Test.make ~name:"sum(max a b) <= sum a + sum b" ~count:500 (arb_pair 4)
    (fun (a, b) -> Vclock.sum (Vclock.max a b) <= Vclock.sum a + Vclock.sum b)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_max_upper_bound; prop_max_least; prop_max_commutative; prop_max_associative;
      prop_leq_antisymmetric; prop_leq_transitive; prop_trichotomy; prop_roundtrip;
      prop_inc_strictly_increases; prop_sum_of_max_bounded ]

(* {1 Sparse clocks (Dvclock)} *)

let dv = Dvclock.of_list

let test_dv_basics () =
  Alcotest.(check int) "empty reads 0" 0 (Dvclock.get Dvclock.empty 5);
  let v = dv [ (0, 2); (3, 1) ] in
  Alcotest.(check int) "get present" 2 (Dvclock.get v 0);
  Alcotest.(check int) "get absent" 0 (Dvclock.get v 1);
  Alcotest.(check (list int)) "support" [ 0; 3 ] (Dvclock.support v);
  Alcotest.(check int) "sum" 3 (Dvclock.sum v);
  Alcotest.(check string) "printing" "{0:2, 3:1}" (Dvclock.to_string v)

let test_dv_zero_entries_normalized () =
  let v = Dvclock.set (dv [ (1, 5) ]) 1 0 in
  Alcotest.(check bool) "set to 0 removes" true (Dvclock.equal v Dvclock.empty);
  Alcotest.(check (list (pair int int))) "of_list drops zeros" [ (2, 1) ]
    (Dvclock.to_list (dv [ (0, 0); (2, 1) ]))

let test_dv_validation () =
  Alcotest.check_raises "negative id" (Invalid_argument "Dvclock: negative thread id")
    (fun () -> ignore (Dvclock.get Dvclock.empty (-1)));
  Alcotest.check_raises "negative count" (Invalid_argument "Dvclock.set: negative count")
    (fun () -> ignore (Dvclock.set Dvclock.empty 0 (-1)))

let test_dv_vclock_roundtrip () =
  let dense = vc [ 1; 0; 3 ] in
  let sparse = Dvclock.of_vclock dense in
  Alcotest.(check (list (pair int int))) "sparse form" [ (0, 1); (2, 3) ]
    (Dvclock.to_list sparse);
  check_clock "roundtrip" dense (Dvclock.to_vclock ~dim:3 sparse);
  Alcotest.check_raises "dim too small"
    (Invalid_argument "Dvclock.to_vclock: entry beyond dimension") (fun () ->
      ignore (Dvclock.to_vclock ~dim:2 sparse))

(* Sparse operations must agree with dense ones on any fixed dimension. *)
let dv_gen n = QCheck.Gen.(array_size (return n) (int_bound 5) >|= Vclock.of_array)

let arb_dv_pair =
  QCheck.make
    ~print:(fun (a, b) -> Vclock.to_string a ^ " " ^ Vclock.to_string b)
    QCheck.Gen.(pair (dv_gen 4) (dv_gen 4))

let prop_dv_agrees_with_dense =
  QCheck.Test.make ~name:"sparse ops agree with dense ops" ~count:500 arb_dv_pair
    (fun (a, b) ->
      let sa = Dvclock.of_vclock a and sb = Dvclock.of_vclock b in
      Dvclock.leq sa sb = Vclock.leq a b
      && Dvclock.lt sa sb = Vclock.lt a b
      && Dvclock.equal sa sb = Vclock.equal a b
      && Dvclock.concurrent sa sb = Vclock.concurrent a b
      && Dvclock.equal (Dvclock.max sa sb) (Dvclock.of_vclock (Vclock.max a b))
      && Dvclock.sum sa = Vclock.sum a
      && Dvclock.equal (Dvclock.inc sa 2) (Dvclock.of_vclock (Vclock.inc a 2)))

let prop_dv_partial_order =
  QCheck.Test.make ~name:"sparse leq antisymmetric and transitive" ~count:500
    (QCheck.make
       ~print:(fun (a, b, c) ->
         String.concat " " (List.map Vclock.to_string [ a; b; c ]))
       QCheck.Gen.(triple (dv_gen 3) (dv_gen 3) (dv_gen 3)))
    (fun (a, b, c) ->
      let sa = Dvclock.of_vclock a
      and sb = Dvclock.of_vclock b
      and sc = Dvclock.of_vclock c in
      ((not (Dvclock.leq sa sb && Dvclock.leq sb sa)) || Dvclock.equal sa sb)
      && ((not (Dvclock.leq sa sb && Dvclock.leq sb sc)) || Dvclock.leq sa sc))

let dv_properties =
  List.map QCheck_alcotest.to_alcotest [ prop_dv_agrees_with_dense; prop_dv_partial_order ]

let () =
  Alcotest.run "vclock"
    [ ( "unit",
        [ Alcotest.test_case "zero" `Quick test_zero;
          Alcotest.test_case "zero invalid" `Quick test_zero_invalid;
          Alcotest.test_case "get/set" `Quick test_get_set;
          Alcotest.test_case "get out of bounds" `Quick test_get_out_of_bounds;
          Alcotest.test_case "set negative" `Quick test_set_negative;
          Alcotest.test_case "inc" `Quick test_inc;
          Alcotest.test_case "max" `Quick test_max;
          Alcotest.test_case "max dim mismatch" `Quick test_max_dim_mismatch;
          Alcotest.test_case "leq/lt" `Quick test_leq_lt;
          Alcotest.test_case "concurrent" `Quick test_concurrent;
          Alcotest.test_case "of_array validation" `Quick test_of_array_validation;
          Alcotest.test_case "of_array copies" `Quick test_of_array_copies;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "of_string invalid" `Quick test_of_string_invalid;
          Alcotest.test_case "sum" `Quick test_sum ] );
      ("properties", properties);
      ( "dvclock",
        [ Alcotest.test_case "basics" `Quick test_dv_basics;
          Alcotest.test_case "zero entries normalized" `Quick test_dv_zero_entries_normalized;
          Alcotest.test_case "validation" `Quick test_dv_validation;
          Alcotest.test_case "vclock roundtrip" `Quick test_dv_vclock_roundtrip ] );
      ("dvclock-properties", dv_properties) ]
