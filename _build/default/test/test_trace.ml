(* Tests for the trace library: event and execution bookkeeping, and the
   brute-force causality oracle. *)

open Trace

(* {1 Helpers} *)

(* A small random-execution generator shared (by copy) with test_mvc: a
   list of (tid, action) where action encodes internal/read/write over a
   tiny variable pool. *)
type action = A_internal | A_read of string | A_write of string * int

let build_exec ~nthreads steps =
  let b = Exec.builder ~nthreads ~init:[ ("x", 0); ("y", 0); ("z", 0) ] in
  List.iter
    (fun (tid, action) ->
      match action with
      | A_internal -> ignore (Exec.add_internal b tid)
      | A_read x -> ignore (Exec.add_read b tid x 0)
      | A_write (x, v) -> ignore (Exec.add_write b tid x v))
    steps;
  Exec.freeze b

let gen_action =
  QCheck.Gen.(
    frequency
      [ (1, return A_internal);
        (3, map (fun x -> A_read x) (oneofl [ "x"; "y"; "z" ]));
        (4, map2 (fun x v -> A_write (x, v)) (oneofl [ "x"; "y"; "z" ]) (int_bound 9)) ])

let gen_steps ~nthreads =
  QCheck.Gen.(list_size (int_range 0 25) (pair (int_bound (nthreads - 1)) gen_action))

let print_steps steps =
  String.concat ";"
    (List.map
       (fun (tid, a) ->
         Printf.sprintf "T%d:%s" tid
           (match a with
           | A_internal -> "i"
           | A_read x -> "r" ^ x
           | A_write (x, v) -> Printf.sprintf "w%s=%d" x v))
       steps)

let arb_steps ~nthreads = QCheck.make ~print:print_steps (gen_steps ~nthreads)

(* {1 Types} *)

let test_sync_vars () =
  Alcotest.(check bool) "lock var is sync" true (Types.is_sync_var (Types.lock_var "m"));
  Alcotest.(check bool) "notify var is sync" true
    (Types.is_sync_var (Types.notify_var "c"));
  Alcotest.(check bool) "plain var is data" true (Types.is_data_var "x");
  Alcotest.(check bool) "lock var is not data" false
    (Types.is_data_var (Types.lock_var "m"));
  Alcotest.(check bool) "distinct namespaces" true
    (Types.lock_var "m" <> Types.notify_var "m")

(* {1 Event} *)

let test_event_accessors () =
  let r = Event.read ~eid:0 ~tid:1 ~pos:1 ~var:"x" ~value:7 in
  let w = Event.write ~eid:1 ~tid:0 ~pos:1 ~var:"x" ~value:3 in
  let n = Event.internal ~eid:2 ~tid:1 ~pos:2 in
  Alcotest.(check bool) "read is_read" true (Event.is_read r);
  Alcotest.(check bool) "read not write" false (Event.is_write r);
  Alcotest.(check bool) "write is_write" true (Event.is_write w);
  Alcotest.(check bool) "internal not access" false (Event.is_access n);
  Alcotest.(check (option string)) "variable of read" (Some "x") (Event.variable r);
  Alcotest.(check (option string)) "variable of internal" None (Event.variable n);
  Alcotest.(check (option int)) "written value" (Some 3) (Event.written_value w);
  Alcotest.(check (option int)) "read has no written value" None (Event.written_value r);
  Alcotest.(check bool) "accesses x" true (Event.accesses r "x");
  Alcotest.(check bool) "does not access y" false (Event.accesses r "y");
  Alcotest.(check bool) "writes x" true (Event.writes w "x");
  Alcotest.(check bool) "read does not write x" false (Event.writes r "x")

(* {1 Exec} *)

let test_builder_positions () =
  let b = Exec.builder ~nthreads:2 ~init:[ ("x", 5) ] in
  let e1 = Exec.add_write b 0 "x" 1 in
  let e2 = Exec.add_read b 1 "x" 1 in
  let e3 = Exec.add_write b 0 "y" 2 in
  let m = Exec.freeze b in
  Alcotest.(check int) "eids sequential" 0 e1.Event.eid;
  Alcotest.(check int) "eid 1" 1 e2.Event.eid;
  Alcotest.(check int) "eid 2" 2 e3.Event.eid;
  Alcotest.(check int) "thread 0 positions" 1 e1.Event.pos;
  Alcotest.(check int) "second event of thread 0" 2 e3.Event.pos;
  Alcotest.(check int) "thread 1 position" 1 e2.Event.pos;
  Alcotest.(check int) "length" 3 (Exec.length m);
  Alcotest.(check int) "nthreads" 2 (Exec.nthreads m);
  Alcotest.(check int) "init value" 5 (Exec.init_value m "x");
  Alcotest.(check int) "undeclared init is 0" 0 (Exec.init_value m "q")

let test_builder_validation () =
  Alcotest.check_raises "nthreads 0" (Invalid_argument "Exec.builder: nthreads must be positive")
    (fun () -> ignore (Exec.builder ~nthreads:0 ~init:[]));
  let b = Exec.builder ~nthreads:1 ~init:[] in
  Alcotest.check_raises "bad tid" (Invalid_argument "Exec: thread id out of range")
    (fun () -> ignore (Exec.add_internal b 1))

let test_variables () =
  let b = Exec.builder ~nthreads:1 ~init:[ ("a", 0) ] in
  ignore (Exec.add_write b 0 "c" 1);
  ignore (Exec.add_read b 0 "b" 0);
  let m = Exec.freeze b in
  Alcotest.(check (list string)) "vars sorted, init included" [ "a"; "b"; "c" ]
    (Exec.variables m)

let test_thread_events () =
  let b = Exec.builder ~nthreads:2 ~init:[] in
  ignore (Exec.add_internal b 0);
  ignore (Exec.add_internal b 1);
  ignore (Exec.add_internal b 0);
  let m = Exec.freeze b in
  Alcotest.(check int) "thread 0 has 2" 2 (List.length (Exec.thread_events m 0));
  Alcotest.(check int) "thread 1 has 1" 1 (List.length (Exec.thread_events m 1))

(* {1 Causality: unit} *)

let test_program_order () =
  let m = build_exec ~nthreads:2 [ (0, A_internal); (0, A_internal); (1, A_internal) ] in
  let c = Causality.compute m in
  Alcotest.(check bool) "e0 < e1 same thread" true (Causality.precedes c 0 1);
  Alcotest.(check bool) "no back edge" false (Causality.precedes c 1 0);
  Alcotest.(check bool) "internals of different threads concurrent" true
    (Causality.concurrent c 0 2)

let test_conflict_edges () =
  (* T0: write x | T1: read x | T1: read y | T0: read y *)
  let m =
    build_exec ~nthreads:2
      [ (0, A_write ("x", 1)); (1, A_read "x"); (1, A_read "y"); (0, A_read "y") ]
  in
  let c = Causality.compute m in
  Alcotest.(check bool) "write-read edge" true (Causality.precedes c 0 1);
  Alcotest.(check bool) "read-read not ordered across threads" true
    (Causality.concurrent c 2 3)

let test_transitivity_via_variable () =
  (* T0 writes x; T1 reads x then writes y; T2 reads y: T0 ≺ T2. *)
  let m =
    build_exec ~nthreads:3
      [ (0, A_write ("x", 1)); (1, A_read "x"); (1, A_write ("y", 2)); (2, A_read "y") ]
  in
  let c = Causality.compute m in
  Alcotest.(check bool) "chain through two variables" true (Causality.precedes c 0 3)

let test_predecessors () =
  let m =
    build_exec ~nthreads:2 [ (0, A_write ("x", 1)); (1, A_read "x"); (1, A_internal) ]
  in
  let c = Causality.compute m in
  Alcotest.(check (list int)) "predecessors of the last event" [ 0; 1 ]
    (Causality.predecessors c 2);
  Alcotest.(check (list int)) "first event has none" [] (Causality.predecessors c 0)

let test_downset_count () =
  let m =
    build_exec ~nthreads:2
      [ (0, A_write ("x", 1)); (0, A_write ("x", 2)); (1, A_read "x"); (1, A_write ("y", 3)) ]
  in
  let c = Causality.compute m in
  let relevant = Event.is_write in
  Alcotest.(check int) "writes of T0 up to e1" 2
    (Causality.downset_count c ~relevant 1 0);
  Alcotest.(check int) "T0 writes preceding T1's read" 2
    (Causality.downset_count c ~relevant 2 0);
  Alcotest.(check int) "T1 write counts itself" 1
    (Causality.downset_count c ~relevant 3 1)

(* {1 Causality: properties} *)

let prop_partial_order =
  QCheck.Test.make ~name:"closure is a strict partial order" ~count:200
    (arb_steps ~nthreads:3) (fun steps ->
      let c = Causality.compute (build_exec ~nthreads:3 steps) in
      Causality.check_partial_order c)

let prop_program_order_included =
  QCheck.Test.make ~name:"program order is included" ~count:200 (arb_steps ~nthreads:3)
    (fun steps ->
      let m = build_exec ~nthreads:3 steps in
      let c = Causality.compute m in
      let evs = Exec.events m in
      let ok = ref true in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b ->
              if i < j && a.Event.tid = b.Event.tid && not (Causality.precedes c i j) then
                ok := false)
            evs)
        evs;
      !ok)

let prop_conflicts_included =
  QCheck.Test.make ~name:"variable conflicts are included" ~count:200
    (arb_steps ~nthreads:3) (fun steps ->
      let m = build_exec ~nthreads:3 steps in
      let c = Causality.compute m in
      let evs = Exec.events m in
      let ok = ref true in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b ->
              if
                i < j
                && (match (Event.variable a, Event.variable b) with
                   | Some x, Some y -> x = y && (Event.is_write a || Event.is_write b)
                   | _ -> false)
                && not (Causality.precedes c i j)
              then ok := false)
            evs)
        evs;
      !ok)

let prop_precedes_respects_observed_order =
  QCheck.Test.make ~name:"causality implies observed order" ~count:200
    (arb_steps ~nthreads:3) (fun steps ->
      let m = build_exec ~nthreads:3 steps in
      let c = Causality.compute m in
      let r = Exec.length m in
      let ok = ref true in
      for i = 0 to r - 1 do
        for j = 0 to i do
          if Causality.precedes c i j then ok := false
        done
      done;
      !ok)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_partial_order; prop_program_order_included; prop_conflicts_included;
      prop_precedes_respects_observed_order ]

let () =
  Alcotest.run "trace"
    [ ( "types",
        [ Alcotest.test_case "sync/data namespaces" `Quick test_sync_vars ] );
      ( "event",
        [ Alcotest.test_case "accessors" `Quick test_event_accessors ] );
      ( "exec",
        [ Alcotest.test_case "builder positions" `Quick test_builder_positions;
          Alcotest.test_case "builder validation" `Quick test_builder_validation;
          Alcotest.test_case "variables" `Quick test_variables;
          Alcotest.test_case "thread events" `Quick test_thread_events ] );
      ( "causality",
        [ Alcotest.test_case "program order" `Quick test_program_order;
          Alcotest.test_case "conflict edges" `Quick test_conflict_edges;
          Alcotest.test_case "transitivity" `Quick test_transitivity_via_variable;
          Alcotest.test_case "predecessors" `Quick test_predecessors;
          Alcotest.test_case "downset count" `Quick test_downset_count ] );
      ("properties", properties) ]
