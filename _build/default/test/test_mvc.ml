(* Tests for Algorithm A: the paper's requirements (a), (b), (c) and
   Theorem 3, validated event-by-event against the brute-force causality
   oracle on random executions. *)

open Trace

type action = A_internal | A_read of string | A_write of string * int

let vars_pool = [ "x"; "y"; "z" ]

let build_exec ~nthreads steps =
  let b = Exec.builder ~nthreads ~init:[] in
  List.iter
    (fun (tid, action) ->
      match action with
      | A_internal -> ignore (Exec.add_internal b tid)
      | A_read x -> ignore (Exec.add_read b tid x 0)
      | A_write (x, v) -> ignore (Exec.add_write b tid x v))
    steps;
  Exec.freeze b

let gen_action =
  QCheck.Gen.(
    frequency
      [ (1, return A_internal);
        (3, map (fun x -> A_read x) (oneofl vars_pool));
        (4, map2 (fun x v -> A_write (x, v)) (oneofl vars_pool) (int_bound 9)) ])

let gen_steps ~nthreads =
  QCheck.Gen.(list_size (int_range 1 30) (pair (int_bound (nthreads - 1)) gen_action))

let print_steps steps =
  String.concat ";"
    (List.map
       (fun (tid, a) ->
         Printf.sprintf "T%d:%s" tid
           (match a with
           | A_internal -> "i"
           | A_read x -> "r" ^ x
           | A_write (x, v) -> Printf.sprintf "w%s=%d" x v))
       steps)

let arb_steps ~nthreads = QCheck.make ~print:print_steps (gen_steps ~nthreads)

(* Replay an execution through Algorithm A, returning the emitted
   messages (eid -> mvc) in order. *)
let replay ~relevance exec =
  let algo = Mvc.Algorithm.create ~nthreads:(Exec.nthreads exec) ~relevance in
  let messages = ref [] in
  Array.iter
    (fun (e : Event.t) ->
      match Mvc.Algorithm.process algo e.tid e.kind with
      | Some mvc -> messages := (e, mvc) :: !messages
      | None -> ())
    (Exec.events exec);
  (algo, List.rev !messages)

let relevance_writes = Mvc.Relevance.writes_of_vars vars_pool
let relevant_event e = Mvc.Relevance.on_event relevance_writes e

(* {1 Relevance} *)

let test_relevance_policies () =
  let w = Event.Write ("x", 1) in
  let r = Event.Read ("x", 1) in
  let lockw = Event.Write (Types.lock_var "m", 1) in
  Alcotest.(check bool) "writes_of_vars accepts write" true
    (Mvc.Relevance.is_relevant (Mvc.Relevance.writes_of_vars [ "x" ]) w);
  Alcotest.(check bool) "writes_of_vars rejects other var" false
    (Mvc.Relevance.is_relevant (Mvc.Relevance.writes_of_vars [ "y" ]) w);
  Alcotest.(check bool) "writes_of_vars rejects read" false
    (Mvc.Relevance.is_relevant (Mvc.Relevance.writes_of_vars [ "x" ]) r);
  Alcotest.(check bool) "all_writes rejects sync vars" false
    (Mvc.Relevance.is_relevant Mvc.Relevance.all_writes lockw);
  Alcotest.(check bool) "all_accesses accepts read" true
    (Mvc.Relevance.is_relevant Mvc.Relevance.all_accesses r);
  Alcotest.(check bool) "nothing rejects all" false
    (Mvc.Relevance.is_relevant Mvc.Relevance.nothing w);
  Alcotest.(check (option (list string))) "variables of writes_of_vars" (Some [ "x"; "y" ])
    (Mvc.Relevance.variables (Mvc.Relevance.writes_of_vars [ "y"; "x"; "y" ]))

(* {1 Algorithm A on the paper's examples} *)

let test_paper_xyz_clocks () =
  (* The exact execution of Example 2 / Fig. 6. *)
  let steps =
    [ (0, A_read "x"); (0, A_write ("x", 0));
      (1, A_read "x"); (1, A_write ("z", 1));
      (0, A_read "x");
      (1, A_read "x"); (1, A_write ("x", 1));
      (0, A_write ("y", 1)) ]
  in
  let exec = build_exec ~nthreads:2 steps in
  let _, messages = replay ~relevance:relevance_writes exec in
  let clocks = List.map (fun (_, v) -> Vclock.to_list v) messages in
  Alcotest.(check (list (list int)))
    "e1 (1,0); e2 (1,1); e4 (1,2); e3 (2,0)"
    [ [ 1; 0 ]; [ 1; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]
    clocks

let test_internal_events_do_not_move_clocks () =
  let exec = build_exec ~nthreads:2 [ (0, A_internal); (1, A_internal); (0, A_internal) ] in
  let algo, messages = replay ~relevance:relevance_writes exec in
  Alcotest.(check int) "no messages" 0 (List.length messages);
  Alcotest.(check (list int)) "V_0 stays zero" [ 0; 0 ]
    (Vclock.to_list (Mvc.Algorithm.thread_clock algo 0))

let test_write_joins_access_clock () =
  (* T0 reads x (access clock picks up T0), T1 writes x: T1's clock must
     absorb the read's knowledge. *)
  let exec =
    build_exec ~nthreads:2 [ (0, A_write ("y", 1)); (0, A_read "x"); (1, A_write ("x", 2)) ]
  in
  let algo, _ = replay ~relevance:relevance_writes exec in
  Alcotest.(check (list int)) "T1 knows T0's relevant write" [ 1; 1 ]
    (Vclock.to_list (Mvc.Algorithm.thread_clock algo 1))

let test_read_does_not_update_write_clock () =
  let exec = build_exec ~nthreads:2 [ (0, A_write ("x", 1)); (1, A_read "x") ] in
  let algo, _ = replay ~relevance:relevance_writes exec in
  Alcotest.(check (list int)) "V^w_x unchanged by the read" [ 1; 0 ]
    (Vclock.to_list (Mvc.Algorithm.write_clock algo "x"));
  Alcotest.(check (list int)) "V^a_x updated by the read" [ 1; 0 ]
    (Vclock.to_list (Mvc.Algorithm.access_clock algo "x"))

let test_process_validation () =
  let algo = Mvc.Algorithm.create ~nthreads:2 ~relevance:relevance_writes in
  Alcotest.check_raises "bad thread id" (Invalid_argument "Algorithm.process: bad thread id")
    (fun () -> ignore (Mvc.Algorithm.process algo 2 Event.Internal));
  Alcotest.check_raises "create with 0 threads"
    (Invalid_argument "Algorithm.create: nthreads must be positive") (fun () ->
      ignore (Mvc.Algorithm.create ~nthreads:0 ~relevance:relevance_writes))

(* {1 Requirements (a), (b), (c)} *)

(* After processing event e^k_i, check the three requirements against the
   brute-force oracle. Formally (paper, Section 3), V^a_x / V^w_x encode
   the indexed sets (e^k_i]^a_x / (e^k_i]^w_x: relevant events that equal
   or causally precede SOME access (resp. write) of x occurring so far —
   a union over all such accesses, not just the latest. *)
let check_requirements exec =
  let nthreads = Exec.nthreads exec in
  let c = Causality.compute exec in
  let evs = Exec.events exec in
  let algo = Mvc.Algorithm.create ~nthreads ~relevance:relevance_writes in
  let relevant = relevant_event in
  (* All accesses / writes of each variable seen so far (eids). *)
  let accesses_of = Hashtbl.create 4 in
  let writes_of = Hashtbl.create 4 in
  let ok = ref true in
  (* Number of relevant events of thread j equal to or preceding some
     event in [anchors]. *)
  let union_count anchors j =
    let covered (f : Event.t) =
      List.exists (fun eid -> f.eid = eid || Causality.precedes c f.eid eid) anchors
    in
    Array.to_list evs
    |> List.filter (fun f -> f.Event.tid = j && relevant f && covered f)
    |> List.length
  in
  Array.iter
    (fun (e : Event.t) ->
      ignore (Mvc.Algorithm.process algo e.tid e.kind);
      (match Event.variable e with
      | Some x ->
          Hashtbl.replace accesses_of x
            (e.eid :: Option.value ~default:[] (Hashtbl.find_opt accesses_of x));
          if Event.is_write e then
            Hashtbl.replace writes_of x
              (e.eid :: Option.value ~default:[] (Hashtbl.find_opt writes_of x))
      | None -> ());
      (* (a): V_i[j] counts relevant events of t_j preceding (or equal,
         when i = j and e relevant) the current event of t_i. *)
      let vi = Mvc.Algorithm.thread_clock algo e.tid in
      for j = 0 to nthreads - 1 do
        if Vclock.get vi j <> Causality.downset_count c ~relevant e.eid j then ok := false
      done;
      (* (b) and (c) for every variable seen so far. *)
      Hashtbl.iter
        (fun x anchors ->
          let va = Mvc.Algorithm.access_clock algo x in
          for j = 0 to nthreads - 1 do
            if Vclock.get va j <> union_count anchors j then ok := false
          done)
        accesses_of;
      Hashtbl.iter
        (fun x anchors ->
          let vw = Mvc.Algorithm.write_clock algo x in
          for j = 0 to nthreads - 1 do
            if Vclock.get vw j <> union_count anchors j then ok := false
          done)
        writes_of;
      if not (Mvc.Algorithm.invariant algo) then ok := false)
    (Exec.events exec);
  !ok

let prop_requirements_2 =
  QCheck.Test.make ~name:"requirements (a),(b),(c) — 2 threads" ~count:300
    (arb_steps ~nthreads:2) (fun steps ->
      check_requirements (build_exec ~nthreads:2 steps))

let prop_requirements_3 =
  QCheck.Test.make ~name:"requirements (a),(b),(c) — 3 threads" ~count:300
    (arb_steps ~nthreads:3) (fun steps ->
      check_requirements (build_exec ~nthreads:3 steps))

(* {1 Theorem 3} *)

let check_theorem3 nthreads steps =
  let exec = build_exec ~nthreads steps in
  let c = Causality.compute exec in
  let _, messages = replay ~relevance:relevance_writes exec in
  let ok = ref true in
  List.iter
    (fun ((e : Event.t), v) ->
      List.iter
        (fun ((e' : Event.t), v') ->
          if e.eid <> e'.eid then begin
            let causal = Causality.relevant_precedes c ~relevant:relevant_event e.eid e'.eid in
            let thm_index = Vclock.get v e.tid <= Vclock.get v' e.tid in
            let thm_order = Vclock.lt v v' in
            if causal <> thm_index then ok := false;
            if causal <> thm_order then ok := false
          end)
        messages)
    messages;
  !ok

let prop_theorem3_2 =
  QCheck.Test.make ~name:"Theorem 3 (e ⊳ e' iff V[i] <= V'[i] iff V < V') — 2 threads"
    ~count:300 (arb_steps ~nthreads:2) (fun steps -> check_theorem3 2 steps)

let prop_theorem3_3 =
  QCheck.Test.make ~name:"Theorem 3 — 3 threads" ~count:300 (arb_steps ~nthreads:3)
    (fun steps -> check_theorem3 3 steps)

let prop_theorem3_4 =
  QCheck.Test.make ~name:"Theorem 3 — 4 threads" ~count:150 (arb_steps ~nthreads:4)
    (fun steps -> check_theorem3 4 steps)

(* Concurrency between messages must also agree with the oracle. *)
let prop_concurrent_agrees =
  QCheck.Test.make ~name:"message concurrency agrees with oracle" ~count:300
    (arb_steps ~nthreads:3) (fun steps ->
      let exec = build_exec ~nthreads:3 steps in
      let c = Causality.compute exec in
      let algo = Mvc.Algorithm.create ~nthreads:3 ~relevance:relevance_writes in
      let messages = ref [] in
      Array.iter
        (fun (e : Event.t) ->
          match Mvc.Algorithm.process algo e.tid e.kind with
          | Some mvc ->
              let var, value =
                match e.kind with Event.Write (x, v) -> (x, v) | _ -> assert false
              in
              messages := Message.make ~eid:e.eid ~tid:e.tid ~var ~value ~mvc :: !messages
          | None -> ())
        (Exec.events exec);
      let messages = List.rev !messages in
      List.for_all
        (fun (m : Message.t) ->
          List.for_all
            (fun (m' : Message.t) ->
              m.eid = m'.eid
              || Message.concurrent m m' = Causality.concurrent c m.eid m'.eid)
            messages)
        messages)

(* {1 Theorem 3 on real program executions} *)

(* The synthetic-execution properties above do not exercise lock and
   wait/notify lowering; VM-produced executions do. *)
let test_theorem3_on_program_executions () =
  let relevance = Mvc.Relevance.all_writes in
  let relevant e = Mvc.Relevance.on_event relevance e in
  List.iter
    (fun (name, program) ->
      List.iter
        (fun seed ->
          let r =
            Tml.Vm.run_program ~fuel:2_000 ~relevance ~sched:(Tml.Sched.random ~seed)
              program
          in
          let exec = Option.get r.Tml.Vm.exec in
          let c = Causality.compute exec in
          let messages = r.Tml.Vm.messages in
          List.iter
            (fun (m : Message.t) ->
              List.iter
                (fun (m' : Message.t) ->
                  if m.eid <> m'.eid then begin
                    let causal = Causality.relevant_precedes c ~relevant m.eid m'.eid in
                    let thm = Vclock.get m.mvc m.tid <= Vclock.get m'.mvc m.tid in
                    if causal <> thm then
                      Alcotest.failf "%s seed %d: Theorem 3 broken between e%d and e%d"
                        name seed m.eid m'.eid
                  end)
                messages)
            messages)
        [ 3; 17 ])
    [ ("locked-counter", Tml.Programs.locked_counter ~increments:2);
      ("bank-ordered", Tml.Programs.bank_transfer_ordered);
      ("producer-consumer", Tml.Programs.producer_consumer ~items:2);
      ("peterson", Tml.Programs.peterson);
      ("fork-join", Tml.Programs.fork_join ~workers:2) ]

(* {1 Emitter} *)

let test_emitter_collects () =
  let em =
    Mvc.Emitter.create ~nthreads:2 ~init:[ ("x", 0) ] ~relevance:relevance_writes ()
  in
  Mvc.Emitter.on_internal em 0;
  Mvc.Emitter.on_write em 0 "x" 5;
  Mvc.Emitter.on_read em 1 "x" 5;
  Mvc.Emitter.on_write em 1 "y" 6;
  let exec, messages = Mvc.Emitter.finish em in
  Alcotest.(check int) "4 events recorded" 4 (Exec.length exec);
  Alcotest.(check int) "2 messages" 2 (List.length messages);
  Alcotest.(check int) "count matches" 2 (Mvc.Emitter.message_count em);
  let m2 = List.nth messages 1 in
  Alcotest.(check (list int)) "second write saw the first through the read" [ 1; 1 ]
    (Vclock.to_list m2.Message.mvc)

let test_emitter_sink () =
  let seen = ref [] in
  let em =
    Mvc.Emitter.create ~nthreads:1 ~init:[] ~relevance:relevance_writes
      ~sink:(fun m -> seen := m :: !seen)
      ()
  in
  Mvc.Emitter.on_write em 0 "x" 1;
  Mvc.Emitter.on_write em 0 "y" 2;
  Alcotest.(check int) "sink saw both" 2 (List.length !seen)

(* {1 Dynamic threads (spawn/join)} *)

(* A dynamic execution: a list of steps over thread ids that need no
   pre-declaration. *)
type dstep =
  | D_spawn of int * int  (* parent, child *)
  | D_join of int * int
  | D_event of int * action

let replay_dynamic ~relevance steps =
  let algo = Mvc.Dynamic.create ~relevance in
  let emitted = ref [] in
  List.iteri
    (fun idx step ->
      match step with
      | D_spawn (p, c) -> Mvc.Dynamic.spawn algo ~parent:p ~child:c
      | D_join (p, c) -> Mvc.Dynamic.join algo ~parent:p ~child:c
      | D_event (tid, a) ->
          let kind =
            match a with
            | A_internal -> Event.Internal
            | A_read x -> Event.Read (x, 0)
            | A_write (x, v) -> Event.Write (x, v)
          in
          (match Mvc.Dynamic.process algo tid kind with
          | Some v -> emitted := (idx, tid, v) :: !emitted
          | None -> ()))
    steps;
  (algo, List.rev !emitted)

(* Ground truth: brute-force happens-before over the dynamic execution,
   with spawn edges (parent's past precedes child's events) and join
   edges (child's past precedes parent's later events). *)
let dynamic_oracle steps =
  let n = List.length steps in
  let arr = Array.of_list steps in
  let reach = Array.init n (fun _ -> Array.make n false) in
  let actor = function D_spawn (p, _) -> p | D_join (p, _) -> p | D_event (t, _) -> t in
  (* Spawn/join steps belong to the parent's program order; a spawned
     child's program order starts after the spawn; a join pulls the
     child's history into the parent. *)
  let belongs_to tid i =
    match arr.(i) with
    | D_spawn (p, c) -> p = tid || c = tid
    | D_join (p, _) -> p = tid
    | D_event (t, _) -> t = tid
  in
  for b = 0 to n - 1 do
    for a = 0 to b - 1 do
      let direct =
        (* program order of some thread *)
        (let shared_thread tid = belongs_to tid a && belongs_to tid b in
         List.exists shared_thread [ actor arr.(a); actor arr.(b) ]
         ||
         match (arr.(a), arr.(b)) with
         | D_spawn (_, c), _ when belongs_to c b -> true
         | _, D_join (_, c) when belongs_to c a -> true
         | _ -> false)
        ||
        (* conflicting variable accesses *)
        (match (arr.(a), arr.(b)) with
        | D_event (_, ea), D_event (_, eb) -> (
            let var_of = function
              | A_internal -> None
              | A_read x -> Some (x, false)
              | A_write (x, _) -> Some (x, true)
            in
            match (var_of ea, var_of eb) with
            | Some (x, wa), Some (y, wb) -> x = y && (wa || wb)
            | _ -> false)
        | _ -> false)
      in
      if direct then reach.(a).(b) <- true
    done
  done;
  for b = 0 to n - 1 do
    for a = 0 to b - 1 do
      if reach.(a).(b) then
        for c = b + 1 to n - 1 do
          if reach.(b).(c) then reach.(a).(c) <- true
        done
    done
  done;
  reach

let test_dynamic_spawn_inherits () =
  let steps =
    [ D_event (0, A_write ("x", 1)); D_spawn (0, 1); D_event (1, A_write ("y", 2)) ]
  in
  let algo, emitted = replay_dynamic ~relevance:relevance_writes steps in
  (match emitted with
  | [ (_, 0, v0); (_, 1, v1) ] ->
      Alcotest.(check int) "child saw parent's write" 1 (Dvclock.get v1 0);
      Alcotest.(check int) "child's own count" 1 (Dvclock.get v1 1);
      Alcotest.(check bool) "parent write precedes child write" true (Dvclock.lt v0 v1)
  | _ -> Alcotest.fail "expected two emissions");
  Alcotest.(check (list int)) "threads seen" [ 0; 1 ] (Mvc.Dynamic.threads_seen algo)

let test_dynamic_spawn_concurrent_siblings () =
  let steps =
    [ D_spawn (0, 1); D_spawn (0, 2); D_event (1, A_write ("x", 1));
      D_event (2, A_write ("y", 2)) ]
  in
  let _, emitted = replay_dynamic ~relevance:relevance_writes steps in
  match emitted with
  | [ (_, 1, v1); (_, 2, v2) ] ->
      Alcotest.(check bool) "siblings concurrent" true (Dvclock.concurrent v1 v2)
  | _ -> Alcotest.fail "expected two emissions"

let test_dynamic_join () =
  let steps =
    [ D_spawn (0, 1); D_event (1, A_write ("x", 1)); D_join (0, 1);
      D_event (0, A_write ("y", 2)) ]
  in
  let _, emitted = replay_dynamic ~relevance:relevance_writes steps in
  match emitted with
  | [ (_, 1, v1); (_, 0, v0) ] ->
      Alcotest.(check bool) "joined child precedes parent's next write" true
        (Dvclock.lt v1 v0)
  | _ -> Alcotest.fail "expected two emissions"

let test_dynamic_spawn_validation () =
  let algo = Mvc.Dynamic.create ~relevance:relevance_writes in
  Mvc.Dynamic.spawn algo ~parent:0 ~child:1;
  Alcotest.check_raises "respawn rejected"
    (Invalid_argument "Dynamic.spawn: child thread already exists") (fun () ->
      Mvc.Dynamic.spawn algo ~parent:0 ~child:1)

(* On spawn-free executions, the dynamic algorithm must agree with the
   static one. *)
let prop_dynamic_agrees_with_static =
  QCheck.Test.make ~name:"dynamic = static Algorithm A without spawns" ~count:300
    (arb_steps ~nthreads:3) (fun steps ->
      let exec = build_exec ~nthreads:3 steps in
      let _, static_messages = replay ~relevance:relevance_writes exec in
      let dsteps = List.map (fun (tid, a) -> D_event (tid, a)) steps in
      let _, dynamic_messages = replay_dynamic ~relevance:relevance_writes dsteps in
      List.length static_messages = List.length dynamic_messages
      && List.for_all2
           (fun ((e : Event.t), v) (_, tid, dv) ->
             e.tid = tid && Dvclock.equal (Dvclock.of_vclock v) dv)
           static_messages dynamic_messages)

(* Theorem 3 over dynamic executions with spawn/join edges, against the
   dedicated oracle. *)
let gen_dynamic_steps =
  (* Threads 0 (root), 1 and 2 (spawned by 0 at fixed points), with
     random events around the spawns and a final join. *)
  QCheck.Gen.(
    let event tid = map (fun a -> D_event (tid, a)) gen_action in
    let block tid = list_size (int_range 0 6) (event tid) in
    map3
      (fun pre mid post ->
        List.concat
          [ pre; [ D_spawn (0, 1) ]; mid; [ D_spawn (0, 2) ]; post;
            [ D_join (0, 1) ] ])
      (block 0)
      (oneof [ block 0; block 1 ])
      (oneof [ block 0; block 1; block 2 ]))

let print_dsteps steps =
  String.concat ";"
    (List.map
       (function
         | D_spawn (p, c) -> Printf.sprintf "spawn(%d->%d)" p c
         | D_join (p, c) -> Printf.sprintf "join(%d<-%d)" p c
         | D_event (tid, a) ->
             Printf.sprintf "T%d:%s" tid
               (match a with
               | A_internal -> "i"
               | A_read x -> "r" ^ x
               | A_write (x, v) -> Printf.sprintf "w%s=%d" x v))
       steps)

let prop_dynamic_theorem3 =
  QCheck.Test.make ~name:"Theorem 3 with spawn/join (dynamic oracle)" ~count:300
    (QCheck.make ~print:print_dsteps gen_dynamic_steps) (fun steps ->
      let reach = dynamic_oracle steps in
      let _, emitted = replay_dynamic ~relevance:relevance_writes steps in
      (* For emitted events at step indices i < i': causal precedence per
         the oracle must coincide with the Theorem 3 clock test, and the
         earlier event is never preceded by the later one. *)
      List.for_all
        (fun (i, tid, v) ->
          List.for_all
            (fun (i', _, v') ->
              i >= i' || reach.(i).(i') = (Dvclock.get v tid <= Dvclock.get v' tid))
            emitted)
        emitted)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_requirements_2; prop_requirements_3; prop_theorem3_2; prop_theorem3_3;
      prop_theorem3_4; prop_concurrent_agrees; prop_dynamic_agrees_with_static;
      prop_dynamic_theorem3 ]

let () =
  Alcotest.run "mvc"
    [ ( "relevance",
        [ Alcotest.test_case "policies" `Quick test_relevance_policies ] );
      ( "algorithm",
        [ Alcotest.test_case "paper xyz clocks" `Quick test_paper_xyz_clocks;
          Alcotest.test_case "internal events" `Quick test_internal_events_do_not_move_clocks;
          Alcotest.test_case "write joins access clock" `Quick test_write_joins_access_clock;
          Alcotest.test_case "read keeps write clock" `Quick test_read_does_not_update_write_clock;
          Alcotest.test_case "validation" `Quick test_process_validation ] );
      ( "programs",
        [ Alcotest.test_case "Theorem 3 on synchronized programs" `Quick
            test_theorem3_on_program_executions ] );
      ( "emitter",
        [ Alcotest.test_case "collects exec and messages" `Quick test_emitter_collects;
          Alcotest.test_case "sink" `Quick test_emitter_sink ] );
      ( "dynamic",
        [ Alcotest.test_case "spawn inherits" `Quick test_dynamic_spawn_inherits;
          Alcotest.test_case "siblings concurrent" `Quick
            test_dynamic_spawn_concurrent_siblings;
          Alcotest.test_case "join" `Quick test_dynamic_join;
          Alcotest.test_case "spawn validation" `Quick test_dynamic_spawn_validation ] );
      ("properties", properties) ]
