(* Tests for exhaustive schedule exploration. *)

open Tml

let parse = Parser.parse_program

let test_single_thread_single_run () =
  let explored = Explore.all_program_runs (parse {| shared x = 0; thread t { x = 1; x = 2; } |}) in
  Alcotest.(check bool) "complete" true explored.Explore.complete;
  Alcotest.(check int) "one run" 1 (List.length explored.Explore.runs)

let test_two_independent_events () =
  (* One observable event per thread: exactly 2 interleavings. *)
  let explored =
    Explore.all_program_runs (parse {| shared x = 0, y = 0; thread a { x = 1; } thread b { y = 1; } |})
  in
  Alcotest.(check int) "two runs" 2 (List.length explored.Explore.runs)

let test_interleaving_count_grid () =
  (* Two threads, 2 constant writes each: C(4,2) = 6 interleavings. *)
  let explored =
    Explore.all_program_runs
      (parse {| shared x = 0, y = 0; thread a { x = 1; x = 2; } thread b { y = 1; y = 2; } |})
  in
  Alcotest.(check int) "binomial(4,2)" 6 (List.length explored.Explore.runs)

let test_choose_branches_explored () =
  let explored =
    Explore.all_program_runs (parse {| shared x = 0; thread t { x = choose(1, 2, 3); } |})
  in
  Alcotest.(check int) "three runs" 3 (List.length explored.Explore.runs);
  let finals =
    List.map (fun (_, r) -> List.assoc "x" r.Vm.final) explored.Explore.runs
    |> List.sort compare
  in
  Alcotest.(check (list int)) "all branches" [ 1; 2; 3 ] finals

let test_scripts_are_distinct_and_replayable () =
  let program = Programs.racy_counter ~increments:1 in
  let image = Instrument.instrument_program program in
  let explored = Explore.all_program_runs program in
  let scripts = List.map fst explored.Explore.runs in
  Alcotest.(check int) "scripts unique" (List.length scripts)
    (List.length (List.sort_uniq compare scripts));
  (* Each script replays to the same final state. *)
  List.iter
    (fun (script, (r : Vm.run_result)) ->
      let r' = Vm.run_image ~sched:(Sched.of_script script) image in
      Alcotest.(check (list (pair string int))) "replay matches" r.Vm.final r'.Vm.final)
    explored.Explore.runs

let test_max_runs_truncates () =
  let explored =
    Explore.all_program_runs ~max_runs:3 (Programs.racy_counter ~increments:2)
  in
  Alcotest.(check bool) "truncated" false explored.Explore.complete;
  Alcotest.(check int) "kept three" 3 (List.length explored.Explore.runs)

let test_landing_bounded_outcomes () =
  let explored = Explore.all_program_runs Programs.landing_bounded in
  Alcotest.(check bool) "complete" true explored.Explore.complete;
  Alcotest.(check bool) "all complete" true
    (List.for_all (fun (_, r) -> r.Vm.outcome = Vm.Completed) explored.Explore.runs);
  (* The landing flag ends at 1 unless the radio-off write lands before
     the approval test. *)
  let finals =
    List.map (fun (_, r) -> List.assoc "landing" r.Vm.final) explored.Explore.runs
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "both landing outcomes occur" [ 0; 1 ] finals

let test_bank_transfer_deadlocks_somewhere () =
  let explored = Explore.all_program_runs Programs.bank_transfer in
  let outcomes = Explore.count_outcomes explored in
  let deadlocks =
    List.filter (fun (o, _) -> match o with Vm.Deadlocked _ -> true | _ -> false) outcomes
  in
  Alcotest.(check bool) "some schedule deadlocks" true (deadlocks <> []);
  Alcotest.(check bool) "some schedule completes" true
    (List.mem_assoc Vm.Completed outcomes);
  (* Completed runs conserve money. *)
  List.iter
    (fun (_, (r : Vm.run_result)) ->
      if r.Vm.outcome = Vm.Completed then
        Alcotest.(check int) "conservation" 200
          (List.assoc "acct_a" r.Vm.final + List.assoc "acct_b" r.Vm.final))
    explored.Explore.runs

let test_explore_interp_agrees () =
  (* Exploring the interpreter yields the same multiset of final states
     as exploring the VM. *)
  let program = Programs.dekker_sketch in
  let vm_runs = Explore.all_program_runs program in
  let interp_runs =
    Explore.explore
      ~run:(fun ~sched -> Interp.run_program ~sched program)
      ()
  in
  let finals ex =
    List.map (fun (_, r) -> r.Vm.final) ex.Explore.runs |> List.sort compare
  in
  Alcotest.(check int) "same run count" (List.length vm_runs.Explore.runs)
    (List.length interp_runs.Explore.runs);
  Alcotest.(check bool) "same final multiset" true (finals vm_runs = finals interp_runs)

let () =
  Alcotest.run "explore"
    [ ( "exploration",
        [ Alcotest.test_case "single thread" `Quick test_single_thread_single_run;
          Alcotest.test_case "two independent events" `Quick test_two_independent_events;
          Alcotest.test_case "grid count" `Quick test_interleaving_count_grid;
          Alcotest.test_case "choose branches" `Quick test_choose_branches_explored;
          Alcotest.test_case "scripts distinct and replayable" `Quick
            test_scripts_are_distinct_and_replayable;
          Alcotest.test_case "max_runs truncates" `Quick test_max_runs_truncates;
          Alcotest.test_case "landing outcomes" `Quick test_landing_bounded_outcomes;
          Alcotest.test_case "bank transfer deadlocks" `Quick
            test_bank_transfer_deadlocks_somewhere;
          Alcotest.test_case "interpreter agrees" `Quick test_explore_interp_agrees ] ) ]
