(* Coverage sweep: API corners not central enough for the dedicated
   suites — printers, error paths, small accessors, and a handful of
   cross-module consistency checks. *)

open Trace

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

(* {1 Printers} *)

let test_printers_nonempty () =
  let checks =
    [ ("tid", Format.asprintf "%a" Types.pp_tid 3, "T3");
      ("vclock", Vclock.to_string (Vclock.of_list [ 1; 2 ]), "(1,2)");
      ("dvclock", Dvclock.to_string (Dvclock.of_list [ (1, 2) ]), "{1:2}");
      ( "event",
        Format.asprintf "%a" Event.pp (Event.write ~eid:4 ~tid:1 ~pos:2 ~var:"x" ~value:9),
        "e4[T1#2 write x=9]" );
      ( "message",
        Format.asprintf "%a" Message.pp
          (Message.make ~eid:0 ~tid:0 ~var:"x" ~value:1 ~mvc:(Vclock.of_list [ 1 ])),
        "<x=1, T0, (1)>" ) ]
  in
  List.iter (fun (name, got, expected) -> Alcotest.(check string) name expected got) checks

let test_exec_pp () =
  let b = Exec.builder ~nthreads:1 ~init:[ ("x", 1) ] in
  ignore (Exec.add_write b 0 "x" 2);
  let s = Format.asprintf "%a" Exec.pp (Exec.freeze b) in
  Alcotest.(check bool) "mentions the write" true (contains ~needle:"write x=2" s)

let test_outcome_pp () =
  let cases =
    [ (Tml.Vm.Completed, "completed");
      (Tml.Vm.Deadlocked [ 0; 2 ], "deadlocked [T0,T2]");
      (Tml.Vm.Runtime_error { tid = 1; message = "boom" }, "runtime error in T1: boom");
      (Tml.Vm.Fuel_exhausted, "fuel exhausted") ]
  in
  List.iter
    (fun (o, expected) ->
      Alcotest.(check string) expected expected (Format.asprintf "%a" Tml.Vm.pp_outcome o))
    cases

let test_bytecode_pp () =
  let image = Tml.Compile.compile Tml.Programs.xyz in
  let s = Format.asprintf "%a" Tml.Bytecode.pp_image image in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains ~needle s))
    [ "loadg x"; "storeg y"; "halt"; "thread t1" ]

let test_sched_pp () =
  Alcotest.(check string) "script" "[P0 C2 P1]"
    (Format.asprintf "%a" Tml.Sched.pp_script Tml.Sched.[ Pick 0; Choice 2; Pick 1 ])

let test_formula_pp_roundtrip_specials () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Pastltl.Formula.to_string f)
        true
        (Pastltl.Formula.equal f (Pastltl.Fparser.roundtrip f)))
    [ Pastltl.Formula.True; Pastltl.Formula.False; Pastltl.Formula.landing_spec;
      Pastltl.Formula.xyz_spec;
      Pastltl.Patterns.response_guard
        ~request:(Pastltl.Formula.cmp Pastltl.Predicate.Eq (Pastltl.Predicate.Var "r")
                    (Pastltl.Predicate.Const 1))
        ~forbidden:Pastltl.Formula.False ]

(* {1 Error paths} *)

let test_sched_replay_mismatch () =
  let sched = Tml.Sched.of_script Tml.Sched.[ Choice 0 ] in
  (match Tml.Sched.pick sched ~runnable:[ 0 ] with
  | exception Tml.Sched.Replay_mismatch _ -> ()
  | _ -> Alcotest.fail "pick against a choice should mismatch");
  let sched = Tml.Sched.of_script [] in
  match Tml.Sched.choose sched 2 with
  | exception Tml.Sched.Replay_mismatch _ -> ()
  | _ -> Alcotest.fail "exhausted script should mismatch"

let test_sched_validation () =
  let sched = Tml.Sched.round_robin () in
  (match Tml.Sched.pick sched ~runnable:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty runnable");
  match Tml.Sched.choose sched 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero branches"

let test_random_biased_validation () =
  match Tml.Sched.random_biased ~seed:1 ~stickiness:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative stickiness"

let test_programs_validation () =
  let expect f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect (fun () -> Tml.Programs.racy_counter ~increments:0);
  expect (fun () -> Tml.Programs.landing_full ~rounds:0);
  expect (fun () -> Tml.Programs.pipeline ~stages:1);
  expect (fun () -> Tml.Programs.independent ~threads:0 ~writes:1);
  expect (fun () -> Tml.Programs.fork_join ~workers:0);
  expect (fun () -> Tml.Programs.philosophers ~n:1)

let test_fparser_error_message () =
  match Pastltl.Fparser.parse "x ==" with
  | exception Pastltl.Fparser.Error msg ->
      Alcotest.(check bool) "nonempty message" true (String.length msg > 0)
  | f -> Alcotest.failf "parsed %s" (Pastltl.Formula.to_string f)

(* {1 Small accessors and invariants} *)

let test_vclock_hash_consistent () =
  let a = Vclock.of_list [ 1; 2; 3 ] in
  let b = Vclock.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "equal clocks hash equal" (Vclock.hash a) (Vclock.hash b)

let test_message_seq_and_order () =
  let m1 = Message.make ~eid:0 ~tid:0 ~var:"x" ~value:1 ~mvc:(Vclock.of_list [ 1; 0 ]) in
  let m2 = Message.make ~eid:1 ~tid:0 ~var:"x" ~value:2 ~mvc:(Vclock.of_list [ 2; 0 ]) in
  Alcotest.(check int) "seq of first" 1 (Message.seq m1);
  Alcotest.(check int) "seq of second" 2 (Message.seq m2);
  Alcotest.(check bool) "program order" true (Message.causally_precedes m1 m2);
  Alcotest.(check bool) "no back edge" false (Message.causally_precedes m2 m1);
  Alcotest.(check bool) "not self-preceding" false (Message.causally_precedes m1 m1)

let test_ast_helpers () =
  let s = Tml.Parser.parse_stmt "x = y + 1; if (z) { q = 0; }" in
  Alcotest.(check (list string)) "stmt vars" [ "q"; "x"; "y"; "z" ] (Tml.Ast.stmt_vars s);
  Alcotest.(check bool) "size counts nodes" true (Tml.Ast.stmt_size s >= 3);
  Alcotest.(check (list string)) "expr vars" [ "a"; "b" ]
    (Tml.Ast.expr_vars (Tml.Parser.parse_expr "a * 2 + b"))

let test_explore_count_outcomes () =
  let explored = Tml.Explore.all_program_runs Tml.Programs.bank_transfer in
  let counts = Tml.Explore.count_outcomes explored in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
  Alcotest.(check int) "counts partition the runs" (List.length explored.Tml.Explore.runs)
    total;
  (* most frequent first *)
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted by frequency" true (sorted counts)

let test_monitor_width () =
  let c = Pastltl.Monitor.compile Pastltl.Formula.xyz_spec in
  Alcotest.(check bool) "width = distinct subformulas" true
    (Pastltl.Monitor.width c
    = List.length (Pastltl.Formula.subformulas Pastltl.Formula.xyz_spec));
  Alcotest.(check bool) "formula accessor" true
    (Pastltl.Formula.equal (Pastltl.Monitor.formula c) Pastltl.Formula.xyz_spec)

let test_config_builders () =
  let c = Jmpax.Config.default () in
  let c2 = Jmpax.Config.with_seed 7 c in
  Alcotest.(check string) "seeded scheduler" "random(seed=7)"
    (Tml.Sched.name c2.Jmpax.Config.sched);
  let c3 = Jmpax.Config.with_channel (Jmpax.Config.Shuffled 3) c2 in
  Alcotest.(check bool) "channel set" true
    (c3.Jmpax.Config.channel = Jmpax.Config.Shuffled 3)

let test_instrument_sync_vars_wait_notify () =
  let p =
    Tml.Parser.parse_program {| thread t { wait c; } thread u { notify c; } |}
  in
  Alcotest.(check (list string)) "notify var listed"
    [ Types.notify_var "c" ]
    (Tml.Instrument.sync_variables (Tml.Compile.compile p))

let test_liveness_pp () =
  let f =
    Predict.Liveness.FUntil
      ( Predict.Liveness.FTrue,
        Predict.Liveness.FAtom
          (Pastltl.Predicate.make Pastltl.Predicate.Eq (Pastltl.Predicate.Var "x")
             (Pastltl.Predicate.Const 1)) )
  in
  Alcotest.(check string) "printing" "(true U x == 1)"
    (Format.asprintf "%a" Predict.Liveness.pp_fformula f)

let test_typecheck_error_rendering () =
  let p = Tml.Parser.parse_program "shared x = 0; thread t { y = 1; }" in
  match Tml.Typecheck.check p with
  | Error [ e ] ->
      Alcotest.(check string) "message names thread and variable"
        "thread t: assignment to undeclared variable y"
        (Tml.Typecheck.error_to_string e)
  | _ -> Alcotest.fail "expected exactly one error"

(* {1 Cross-module consistency} *)

let test_fsm_on_lattice_runs () =
  (* Checking the lattice runs with the FSM gives the same violating-run
     count as the direct semantics. *)
  let relevance = Mvc.Relevance.writes_of_vars [ "x"; "y"; "z" ] in
  let r =
    Tml.Vm.run_program ~relevance
      ~sched:(Tml.Sched.of_script Tml.Programs.xyz_observed)
      Tml.Programs.xyz
  in
  let comp =
    Observer.Computation.of_messages_exn ~nthreads:2 ~init:Tml.Programs.xyz.Tml.Ast.shared
      r.Tml.Vm.messages
  in
  let lattice = Observer.Lattice.build comp in
  let fsm = Pastltl.Fsm.minimize (Pastltl.Fsm.synthesize Pastltl.Formula.xyz_spec) in
  let violating_by_fsm =
    Observer.Lattice.runs lattice
    |> List.filter (fun run ->
           List.exists not (Pastltl.Fsm.run fsm (Observer.Lattice.states_of_run lattice run)))
    |> List.length
  in
  Alcotest.(check int) "FSM agrees: 1 violating run of 3" 1 violating_by_fsm

let test_dynamic_threads_seen_monotone () =
  let algo = Mvc.Dynamic.create ~relevance:Mvc.Relevance.all_writes in
  ignore (Mvc.Dynamic.process algo 5 (Event.Write ("x", 1)));
  Alcotest.(check (list int)) "implicit root" [ 5 ] (Mvc.Dynamic.threads_seen algo);
  Alcotest.(check int) "relevant count" 1 (Mvc.Dynamic.relevant_count algo 5);
  Alcotest.(check int) "unknown thread count" 0 (Mvc.Dynamic.relevant_count algo 9)

let () =
  Alcotest.run "misc"
    [ ( "printers",
        [ Alcotest.test_case "core printers" `Quick test_printers_nonempty;
          Alcotest.test_case "exec" `Quick test_exec_pp;
          Alcotest.test_case "outcomes" `Quick test_outcome_pp;
          Alcotest.test_case "bytecode" `Quick test_bytecode_pp;
          Alcotest.test_case "scripts" `Quick test_sched_pp;
          Alcotest.test_case "formula roundtrips" `Quick test_formula_pp_roundtrip_specials;
          Alcotest.test_case "liveness formulas" `Quick test_liveness_pp ] );
      ( "errors",
        [ Alcotest.test_case "replay mismatch" `Quick test_sched_replay_mismatch;
          Alcotest.test_case "scheduler validation" `Quick test_sched_validation;
          Alcotest.test_case "biased validation" `Quick test_random_biased_validation;
          Alcotest.test_case "program constructors" `Quick test_programs_validation;
          Alcotest.test_case "fparser messages" `Quick test_fparser_error_message;
          Alcotest.test_case "typecheck rendering" `Quick test_typecheck_error_rendering ] );
      ( "accessors",
        [ Alcotest.test_case "vclock hash" `Quick test_vclock_hash_consistent;
          Alcotest.test_case "message seq/order" `Quick test_message_seq_and_order;
          Alcotest.test_case "ast helpers" `Quick test_ast_helpers;
          Alcotest.test_case "explore outcomes" `Quick test_explore_count_outcomes;
          Alcotest.test_case "monitor width" `Quick test_monitor_width;
          Alcotest.test_case "config builders" `Quick test_config_builders;
          Alcotest.test_case "sync variables" `Quick test_instrument_sync_vars_wait_notify ] );
      ( "consistency",
        [ Alcotest.test_case "FSM on lattice runs" `Quick test_fsm_on_lattice_runs;
          Alcotest.test_case "dynamic threads seen" `Quick
            test_dynamic_threads_seen_monotone ] ) ]
