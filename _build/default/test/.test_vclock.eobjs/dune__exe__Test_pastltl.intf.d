test/test_pastltl.mli:
