test/test_jmpax.mli:
