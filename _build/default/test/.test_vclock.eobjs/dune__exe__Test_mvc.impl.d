test/test_mvc.ml: Alcotest Array Causality Dvclock Event Exec Hashtbl List Message Mvc Option Printf QCheck QCheck_alcotest String Tml Trace Types Vclock
