test/test_tml_parser.ml: Alcotest Ast Bytecode Compile Fmt Instrument Lexer List Parser Pretty Printf Programs QCheck QCheck_alcotest Result String Tml Trace Typecheck
