test/test_misc.ml: Alcotest Dvclock Event Exec Format Jmpax List Message Mvc Observer Pastltl Predict String Tml Trace Types Vclock
