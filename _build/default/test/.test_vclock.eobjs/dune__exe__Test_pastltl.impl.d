test/test_pastltl.ml: Alcotest Array Fmt Format Formula Fparser Fsm List Monitor Pastltl Patterns Predicate Printf QCheck QCheck_alcotest Semantics State
