test/test_vclock.ml: Alcotest Array Dvclock List QCheck QCheck_alcotest String Vclock
