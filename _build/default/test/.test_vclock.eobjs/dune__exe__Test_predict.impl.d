test/test_predict.ml: Alcotest Format List Message Mvc Observer Option Pastltl Predict Tml Trace
