test/test_observer.ml: Alcotest Array Format List Message Mvc Observer Pastltl Printf Set String Tml Trace
