test/test_vclock.mli:
