test/test_trace.ml: Alcotest Array Causality Event Exec List Printf QCheck QCheck_alcotest String Trace Types
