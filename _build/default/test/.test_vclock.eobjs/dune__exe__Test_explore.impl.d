test/test_explore.ml: Alcotest Explore Instrument Interp List Parser Programs Sched Tml Vm
