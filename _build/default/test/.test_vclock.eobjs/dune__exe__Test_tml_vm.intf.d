test/test_tml_vm.mli:
