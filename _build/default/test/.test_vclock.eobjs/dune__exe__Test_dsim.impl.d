test/test_dsim.ml: Alcotest Array Dsim Event Exec List Mvc Printf QCheck QCheck_alcotest String Tml Trace Vclock
