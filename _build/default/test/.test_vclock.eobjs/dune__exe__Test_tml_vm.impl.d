test/test_tml_vm.ml: Alcotest Array Ast Compile Desugar Explore Instrument Interp List Option Parser Predict Printf Programs Result Sched String Tml Trace Typecheck Vm
