test/test_mvc.mli:
