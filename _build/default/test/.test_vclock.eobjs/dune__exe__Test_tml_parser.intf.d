test/test_tml_parser.mli:
