test/test_jmpax.ml: Alcotest Filename Fun Jmpax List Mvc Observer Option Pastltl Predict Printf Scanf String Sys Tml Trace Vclock
