(* Tests for TML front end: lexer, parser, pretty-printer round trips,
   typechecker diagnostics, compiler output shape. *)

open Tml

(* {1 Generators} *)

let shared_pool = [ "x"; "y"; "z" ]
let local_pool = [ "a"; "b" ]
let lock_pool = [ "m"; "n" ]

let gen_expr =
  QCheck.Gen.(
    sized @@ fix (fun self size ->
      if size <= 1 then
        oneof
          [ map (fun n -> Ast.Int n) (int_range (-20) 20);
            map (fun x -> Ast.Var x) (oneofl (shared_pool @ local_pool)) ]
      else
        frequency
          [ (2, map (fun n -> Ast.Int n) (int_range (-20) 20));
            (2, map (fun x -> Ast.Var x) (oneofl (shared_pool @ local_pool)));
            (1, map2 (fun op e -> Ast.Unop (op, e)) (oneofl [ Ast.Neg; Ast.Not ])
                 (self (size / 2)));
            ( 4,
              map3
                (fun op a b -> Ast.Binop (op, a, b))
                (oneofl
                   [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Eq; Ast.Ne;
                     Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.And; Ast.Or ])
                (self (size / 2)) (self (size / 2)) );
            ( 1,
              map (fun es -> Ast.Choose es)
                (list_size (int_range 1 3) (self (size / 3))) ) ]))

let gen_stmt =
  QCheck.Gen.(
    sized @@ fix (fun self size ->
      let leaf =
        oneof
          [ return Ast.Skip;
            map (fun k -> Ast.Nop k) (int_range 1 3);
            map2 (fun x e -> Ast.Assign (x, e)) (oneofl shared_pool) gen_expr;
            map (fun l -> Ast.Lock l) (oneofl lock_pool);
            map (fun l -> Ast.Unlock l) (oneofl lock_pool);
            map (fun c -> Ast.Wait c) (oneofl [ "cv"; "cw" ]);
            map (fun c -> Ast.Notify c) (oneofl [ "cv"; "cw" ]) ]
      in
      if size <= 1 then leaf
      else
        frequency
          [ (3, leaf);
            (2, map Ast.seq (list_size (int_range 1 4) (self (size / 3))));
            ( 2,
              map3 (fun c a b -> Ast.If (c, a, b)) gen_expr (self (size / 2))
                (self (size / 2)) );
            (1, map2 (fun c b -> Ast.While (c, b)) gen_expr (self (size / 2)));
            (1, map2 (fun l b -> Ast.Sync (l, b)) (oneofl lock_pool) (self (size / 2))) ]))

(* Normalization the parser applies: sequences flattened, Skip dropped
   inside sequences, arithmetic negation of a literal folded into the
   literal. *)
let rec normalize_expr = function
  | Ast.Unop (Ast.Neg, e) -> (
      match normalize_expr e with Ast.Int n -> Ast.Int (-n) | e -> Ast.Unop (Ast.Neg, e))
  | Ast.Unop (op, e) -> Ast.Unop (op, normalize_expr e)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, normalize_expr a, normalize_expr b)
  | Ast.Choose es -> Ast.Choose (List.map normalize_expr es)
  | (Ast.Int _ | Ast.Var _) as e -> e

let rec normalize_stmt s =
  match s with
  | Ast.Seq ss -> Ast.seq (List.map normalize_stmt ss)
  | Ast.If (c, a, b) -> Ast.If (normalize_expr c, normalize_stmt a, normalize_stmt b)
  | Ast.While (c, b) -> Ast.While (normalize_expr c, normalize_stmt b)
  | Ast.Sync (l, b) -> Ast.Sync (l, normalize_stmt b)
  | Ast.Assign (x, e) -> Ast.Assign (x, normalize_expr e)
  | Ast.Local_decl (x, e) -> Ast.Local_decl (x, normalize_expr e)
  | ( Ast.Skip | Ast.Nop _ | Ast.Lock _ | Ast.Unlock _ | Ast.Wait _ | Ast.Notify _
    | Ast.Spawn _ | Ast.Join _ ) as s -> s

let gen_program =
  QCheck.Gen.(
    map
      (fun bodies ->
        let threads = List.mapi (fun i b -> (Printf.sprintf "t%d" i, b)) bodies in
        (* [a] and [b] are declared shared here so that expression
           generation can use them without local-declaration plumbing. *)
        Ast.program ~shared:[ ("x", -1); ("y", 0); ("z", 3); ("a", 0); ("b", 1) ] ~threads)
      (list_size (int_range 1 3) gen_stmt))

let arb_program = QCheck.make ~print:Pretty.program_to_string gen_program

(* {1 Lexer} *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "x == 12 && !y || z <= -3" |> List.map fst in
  Alcotest.(check int) "token count" 12 (List.length toks);
  Alcotest.(check string) "roundtrip text" "x == 12 && ! y || z <= - 3 <eof>"
    (String.concat " " (List.map Lexer.token_to_string toks))

let test_lexer_comments () =
  let toks = Lexer.tokenize "x // comment\n= /* block\n comment */ 1;" |> List.map fst in
  Alcotest.(check int) "comments skipped" 5 (List.length toks)

let test_lexer_errors () =
  (match Lexer.tokenize "x @ y" with
  | exception Lexer.Error (msg, pos) ->
      Alcotest.(check bool) "mentions char" true
        (String.length msg > 0 && pos.Lexer.line = 1 && pos.Lexer.col = 3)
  | _ -> Alcotest.fail "expected lexer error");
  match Lexer.tokenize "a /* open" with
  | exception Lexer.Error (msg, _) ->
      Alcotest.(check string) "unterminated comment" "unterminated block comment" msg
  | _ -> Alcotest.fail "expected lexer error"

let test_lexer_positions () =
  let toks = Lexer.tokenize "x\n  y" in
  match toks with
  | [ (Lexer.IDENT "x", p1); (Lexer.IDENT "y", p2); (Lexer.EOF, _) ] ->
      Alcotest.(check (pair int int)) "x at 1,1" (1, 1) (p1.Lexer.line, p1.Lexer.col);
      Alcotest.(check (pair int int)) "y at 2,3" (2, 3) (p2.Lexer.line, p2.Lexer.col)
  | _ -> Alcotest.fail "unexpected token stream"

(* {1 Parser} *)

let expr = Alcotest.testable (Fmt.of_to_string Pretty.expr_to_string) Ast.equal_expr
let stmt = Alcotest.testable (Fmt.of_to_string Pretty.stmt_to_string) Ast.equal_stmt

let test_parse_precedence () =
  Alcotest.check expr "mul binds tighter"
    Ast.(Binop (Add, Var "x", Binop (Mul, Int 2, Var "y")))
    (Parser.parse_expr "x + 2 * y");
  Alcotest.check expr "comparison over arithmetic"
    Ast.(Binop (Lt, Binop (Add, Var "x", Int 1), Var "y"))
    (Parser.parse_expr "x + 1 < y");
  Alcotest.check expr "and over or"
    Ast.(Binop (Or, Var "x", Binop (And, Var "y", Var "z")))
    (Parser.parse_expr "x || y && z");
  Alcotest.check expr "negative literal folds" (Ast.Int (-5)) (Parser.parse_expr "-5");
  Alcotest.check expr "parens override"
    Ast.(Binop (Mul, Binop (Add, Var "x", Int 1), Int 2))
    (Parser.parse_expr "(x + 1) * 2")

let test_parse_left_assoc () =
  Alcotest.check expr "subtraction left-assoc"
    Ast.(Binop (Sub, Binop (Sub, Int 1, Int 2), Int 3))
    (Parser.parse_expr "1 - 2 - 3")

let test_parse_choose () =
  Alcotest.check expr "choose"
    Ast.(Choose [ Int 0; Binop (Add, Var "x", Int 1) ])
    (Parser.parse_expr "choose(0, x + 1)")

let test_parse_statements () =
  Alcotest.check stmt "if-else-if chain"
    Ast.(
      If
        ( Binop (Eq, Var "x", Int 0),
          Assign ("y", Int 1),
          If (Binop (Eq, Var "x", Int 1), Assign ("y", Int 2), Skip) ))
    (Parser.parse_stmt "if (x == 0) { y = 1; } else if (x == 1) { y = 2; }");
  Alcotest.check stmt "sync block"
    Ast.(Sync ("m", Assign ("x", Int 1)))
    (Parser.parse_stmt "sync (m) { x = 1; }");
  Alcotest.check stmt "nop default count" (Ast.Nop 1) (Parser.parse_stmt "nop;");
  Alcotest.check stmt "nop explicit" (Ast.Nop 4) (Parser.parse_stmt "nop 4;")

let test_parse_program_structure () =
  let p =
    Parser.parse_program
      "shared a = 1, b = -2; shared c = 3; thread t { a = b; } thread u { skip; }"
  in
  Alcotest.(check (list (pair string int))) "shared decls merge"
    [ ("a", 1); ("b", -2); ("c", 3) ] p.Ast.shared;
  Alcotest.(check (list string)) "thread names" [ "t"; "u" ]
    (List.map (fun t -> t.Ast.tname) p.Ast.threads)

let expect_parse_error src =
  match Parser.parse_program src with
  | exception Parser.Error _ -> ()
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.failf "expected parse error for %S" src

let test_parse_errors () =
  List.iter expect_parse_error
    [ ""; "thread t {"; "thread t { x = ; }"; "shared x; thread t { }";
      "thread t { if x { } }"; "thread t { nop 0; }"; "thread t { } garbage";
      "thread t { choose(); }" ]

(* {1 Round trips} *)

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"parse (print e) = e" ~count:500
    (QCheck.make ~print:Pretty.expr_to_string gen_expr) (fun e ->
      Ast.equal_expr (normalize_expr e) (Parser.parse_expr (Pretty.expr_to_string e)))

let prop_stmt_roundtrip =
  QCheck.Test.make ~name:"parse (print s) = normalize s" ~count:500
    (QCheck.make ~print:Pretty.stmt_to_string gen_stmt) (fun s ->
      Ast.equal_stmt (normalize_stmt s) (Parser.parse_stmt (Pretty.stmt_to_string s)))

let prop_program_roundtrip =
  QCheck.Test.make ~name:"parse (print p) = normalize p" ~count:300 arb_program (fun p ->
      let normalize (p : Ast.program) =
        { p with
          threads =
            List.map (fun t -> { t with Ast.body = normalize_stmt t.Ast.body }) p.threads }
      in
      Ast.equal_program (normalize p) (Parser.parse_program (Pretty.program_to_string p)))

(* {1 Typecheck} *)

let errors_of p = match Typecheck.check p with Ok () -> [] | Error es -> es

let test_typecheck_ok () =
  List.iter
    (fun (name, p) ->
      Alcotest.(check (list string)) (name ^ " well-formed") []
        (List.map Typecheck.error_to_string (errors_of p)))
    (Programs.all_named ())

let test_typecheck_undeclared () =
  let p = Parser.parse_program "shared x = 0; thread t { y = x; }" in
  Alcotest.(check int) "one error" 1 (List.length (errors_of p));
  let p2 = Parser.parse_program "shared x = 0; thread t { x = q + 1; }" in
  Alcotest.(check int) "undeclared in expression" 1 (List.length (errors_of p2))

let test_typecheck_locals () =
  let shadow = Parser.parse_program "shared x = 0; thread t { local x = 1; }" in
  Alcotest.(check bool) "shadowing rejected" true (errors_of shadow <> []);
  let redecl = Parser.parse_program "thread t { local a = 1; local a = 2; }" in
  Alcotest.(check bool) "redeclaration rejected" true (errors_of redecl <> []);
  let use_before = Parser.parse_program "thread t { local a = b; local b = 1; }" in
  Alcotest.(check bool) "use before declaration rejected" true (errors_of use_before <> [])

let test_typecheck_duplicates () =
  let p = Parser.parse_program "shared x = 0, x = 1; thread t { skip; } thread t { skip; }" in
  Alcotest.(check int) "duplicate shared and thread" 2 (List.length (errors_of p))

let test_locals_of_thread () =
  let p = Parser.parse_program "thread t { local a = 1; if (a) { local b = 2; } }" in
  Alcotest.(check (list string)) "locals in order" [ "a"; "b" ]
    (Typecheck.locals_of_thread (List.hd p.Ast.threads))

(* {1 Compiler} *)

let test_compile_shapes () =
  let image = Compile.compile Programs.landing_bounded in
  Alcotest.(check bool) "valid" true (Result.is_ok (Bytecode.validate image));
  Alcotest.(check bool) "not instrumented" false image.Bytecode.instrumented;
  Alcotest.(check int) "two threads" 2 (Bytecode.nthreads image);
  let instrumented = Instrument.instrument image in
  Alcotest.(check bool) "instrumented flag" true instrumented.Bytecode.instrumented;
  Alcotest.(check bool) "instrumented valid" true
    (Result.is_ok (Bytecode.validate instrumented));
  Alcotest.(check int) "same instruction count" (Bytecode.instr_count image)
    (Bytecode.instr_count instrumented)

let test_instrument_twice_rejected () =
  let image = Instrument.instrument_program Programs.xyz in
  Alcotest.check_raises "double instrumentation"
    (Invalid_argument "Instrument: image already instrumented") (fun () ->
      ignore (Instrument.instrument image))

let test_sync_variables () =
  let image = Compile.compile Programs.bank_transfer in
  Alcotest.(check (list string)) "locks lowered to dummy vars"
    [ Trace.Types.lock_var "la"; Trace.Types.lock_var "lb" ]
    (Instrument.sync_variables image)

let test_compile_rejects_illformed () =
  let p = Parser.parse_program "thread t { q = 1; }" in
  match Compile.compile p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let prop_compile_valid =
  QCheck.Test.make ~name:"generated programs compile to valid images" ~count:300
    arb_program (fun p ->
      (* Generated programs may use locals before declaring them; only
         well-formed ones must compile. *)
      match Typecheck.check p with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
          let image = Compile.compile p in
          Result.is_ok (Bytecode.validate image)
          && Result.is_ok (Bytecode.validate (Instrument.instrument image)))

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_expr_roundtrip; prop_stmt_roundtrip; prop_program_roundtrip; prop_compile_valid ]

let () =
  Alcotest.run "tml-parser"
    [ ( "lexer",
        [ Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "positions" `Quick test_lexer_positions ] );
      ( "parser",
        [ Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "left associativity" `Quick test_parse_left_assoc;
          Alcotest.test_case "choose" `Quick test_parse_choose;
          Alcotest.test_case "statements" `Quick test_parse_statements;
          Alcotest.test_case "program structure" `Quick test_parse_program_structure;
          Alcotest.test_case "errors" `Quick test_parse_errors ] );
      ( "typecheck",
        [ Alcotest.test_case "named programs well-formed" `Quick test_typecheck_ok;
          Alcotest.test_case "undeclared variables" `Quick test_typecheck_undeclared;
          Alcotest.test_case "local scoping" `Quick test_typecheck_locals;
          Alcotest.test_case "duplicates" `Quick test_typecheck_duplicates;
          Alcotest.test_case "locals_of_thread" `Quick test_locals_of_thread ] );
      ( "compiler",
        [ Alcotest.test_case "image shapes" `Quick test_compile_shapes;
          Alcotest.test_case "double instrumentation" `Quick test_instrument_twice_rejected;
          Alcotest.test_case "sync variables" `Quick test_sync_variables;
          Alcotest.test_case "ill-formed rejected" `Quick test_compile_rejects_illformed ] );
      ("properties", properties) ]
