(* Tests for the past-time LTL library: predicates, direct semantics,
   synthesized monitors (differential against the semantics), and the
   formula parser. *)

open Pastltl

let st l = State.of_list l

(* {1 State} *)

let test_state_basics () =
  let s = st [ ("x", 1); ("y", -2) ] in
  Alcotest.(check int) "get x" 1 (State.get s "x");
  Alcotest.(check int) "missing reads 0" 0 (State.get s "q");
  let s' = State.set s "x" 5 in
  Alcotest.(check int) "set" 5 (State.get s' "x");
  Alcotest.(check int) "persistent" 1 (State.get s "x");
  Alcotest.(check bool) "equal" true (State.equal s (st [ ("y", -2); ("x", 1) ]));
  Alcotest.(check string) "pp_values order" "<1,-2>"
    (Format.asprintf "%a" (State.pp_values ~vars:[ "x"; "y" ]) s)

(* {1 Predicates} *)

let test_predicates () =
  let open Predicate in
  let p = make Gt (Add (Var "x", Const 1)) (Mul (Var "y", Const 2)) in
  Alcotest.(check bool) "x+1 > 2y at (2,1)" true (holds p (st [ ("x", 2); ("y", 1) ]));
  Alcotest.(check bool) "x+1 > 2y at (1,1)" false (holds p (st [ ("x", 1); ("y", 1) ]));
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (vars p);
  Alcotest.(check int) "eval neg" (-3) (eval_aexp (st [ ("x", 3) ]) (Neg (Var "x")));
  Alcotest.(check int) "eval sub" 1 (eval_aexp (st [ ("x", 3) ]) (Sub (Var "x", Const 2)))

(* {1 Formula helpers} *)

let test_formula_vars_and_size () =
  Alcotest.(check (list string)) "landing spec vars" [ "approved"; "landing"; "radio" ]
    (Formula.vars Formula.landing_spec);
  Alcotest.(check (list string)) "xyz spec vars" [ "x"; "y"; "z" ]
    (Formula.vars Formula.xyz_spec);
  Alcotest.(check bool) "size positive" true (Formula.size Formula.xyz_spec > 3);
  let subs = Formula.subformulas Formula.xyz_spec in
  Alcotest.(check bool) "formula itself last" true
    (Formula.equal (List.nth subs (List.length subs - 1)) Formula.xyz_spec)

(* {1 Direct semantics: units} *)

let atom x n = Formula.cmp Predicate.Eq (Predicate.Var x) (Predicate.Const n)

let trace_of_lists ls = Array.of_list (List.map st ls)

let eval_last f ls =
  let tr = trace_of_lists ls in
  (Semantics.eval f tr).(Array.length tr - 1)

let test_semantics_prev () =
  let f = Formula.Prev (atom "x" 1) in
  Alcotest.(check bool) "prev at init = now" true (eval_last f [ [ ("x", 1) ] ]);
  Alcotest.(check bool) "prev looks back" true
    (eval_last f [ [ ("x", 1) ]; [ ("x", 0) ] ]);
  Alcotest.(check bool) "prev false" false
    (eval_last f [ [ ("x", 0) ]; [ ("x", 1) ] ])

let test_semantics_once_historically () =
  let once = Formula.Once (atom "x" 1) in
  Alcotest.(check bool) "once true if ever" true
    (eval_last once [ [ ("x", 1) ]; [ ("x", 0) ]; [ ("x", 0) ] ]);
  Alcotest.(check bool) "once false if never" false
    (eval_last once [ [ ("x", 0) ]; [ ("x", 0) ] ]);
  let hist = Formula.Historically (atom "x" 1) in
  Alcotest.(check bool) "historically all" true
    (eval_last hist [ [ ("x", 1) ]; [ ("x", 1) ] ]);
  Alcotest.(check bool) "historically broken" false
    (eval_last hist [ [ ("x", 1) ]; [ ("x", 0) ]; [ ("x", 1) ] ])

let test_semantics_since () =
  let f = Formula.Since (atom "x" 1, atom "y" 1) in
  (* y held at some point, x since then. *)
  Alcotest.(check bool) "since holds" true
    (eval_last f [ [ ("y", 1); ("x", 0) ]; [ ("x", 1) ]; [ ("x", 1) ] ]);
  Alcotest.(check bool) "since broken by x gap" false
    (eval_last f [ [ ("y", 1); ("x", 0) ]; [ ("x", 0) ]; [ ("x", 1) ] ]);
  Alcotest.(check bool) "g now is enough" true
    (eval_last f [ [ ("x", 0) ]; [ ("y", 1); ("x", 0) ] ])

let test_semantics_interval () =
  let f = Formula.Interval (atom "p" 1, atom "q" 1) in
  Alcotest.(check bool) "p seen, no q since" true
    (eval_last f [ [ ("p", 1) ]; [] ]);
  Alcotest.(check bool) "q kills the interval" false
    (eval_last f [ [ ("p", 1) ]; [ ("q", 1) ]; [] ]);
  Alcotest.(check bool) "p after q revives" true
    (eval_last f [ [ ("p", 1) ]; [ ("q", 1) ]; [ ("p", 1); ("q", 0) ] ]);
  Alcotest.(check bool) "q now kills even with p now" false
    (eval_last f [ [ ("p", 1); ("q", 1) ] ]);
  Alcotest.(check bool) "nothing seen" false (eval_last f [ [] ])

let test_semantics_start_end () =
  let s = Formula.Start (atom "x" 1) in
  Alcotest.(check bool) "start false initially" false (eval_last s [ [ ("x", 1) ] ]);
  Alcotest.(check bool) "start on rising edge" true
    (eval_last s [ [ ("x", 0) ]; [ ("x", 1) ] ]);
  Alcotest.(check bool) "no start when already true" false
    (eval_last s [ [ ("x", 1) ]; [ ("x", 1) ] ]);
  let e = Formula.End (atom "x" 1) in
  Alcotest.(check bool) "end on falling edge" true
    (eval_last e [ [ ("x", 1) ]; [ ("x", 0) ] ]);
  Alcotest.(check bool) "end needs previous truth" false
    (eval_last e [ [ ("x", 0) ]; [ ("x", 0) ] ])

let test_first_violation () =
  let f = Formula.Historically (atom "x" 0) in
  Alcotest.(check (option int)) "violation located" (Some 2)
    (Semantics.first_violation f [ st []; st []; st [ ("x", 1) ]; st [] ]);
  Alcotest.(check (option int)) "no violation" None
    (Semantics.first_violation f [ st []; st [] ]);
  Alcotest.(check (option int)) "empty trace" None (Semantics.first_violation f [])

(* {1 Paper examples semantics} *)

let landing_states values =
  List.map (fun (l, a, r) -> st [ ("landing", l); ("approved", a); ("radio", r) ]) values

let test_landing_spec_runs () =
  let ok_run = landing_states [ (0, 0, 1); (0, 1, 1); (1, 1, 1); (1, 1, 0) ] in
  Alcotest.(check (option int)) "observed run satisfies" None
    (Semantics.first_violation Formula.landing_spec ok_run);
  let bad_inner = landing_states [ (0, 0, 1); (0, 1, 1); (0, 1, 0); (1, 1, 0) ] in
  Alcotest.(check (option int)) "radio off between approval and landing" (Some 3)
    (Semantics.first_violation Formula.landing_spec bad_inner);
  let bad_right = landing_states [ (0, 0, 1); (0, 0, 0); (0, 1, 0); (1, 1, 0) ] in
  Alcotest.(check (option int)) "radio off before approval" (Some 3)
    (Semantics.first_violation Formula.landing_spec bad_right)

let xyz_states values =
  List.map (fun (x, y, z) -> st [ ("x", x); ("y", y); ("z", z) ]) values

let test_xyz_spec_runs () =
  let observed = xyz_states [ (-1, 0, 0); (0, 0, 0); (0, 0, 1); (1, 0, 1); (1, 1, 1) ] in
  Alcotest.(check (option int)) "observed run satisfies" None
    (Semantics.first_violation Formula.xyz_spec observed);
  let violating = xyz_states [ (-1, 0, 0); (0, 0, 0); (0, 1, 0); (0, 1, 1); (1, 1, 1) ] in
  Alcotest.(check (option int)) "rightmost run violates" (Some 4)
    (Semantics.first_violation Formula.xyz_spec violating)

(* {1 Monitor vs semantics differential} *)

let gen_formula_sized =
  QCheck.Gen.(
    fix (fun self size ->
      let pred =
        map2
          (fun x n -> atom x n)
          (oneofl [ "x"; "y" ])
          (int_bound 2)
      in
      if size <= 1 then oneof [ return Formula.True; return Formula.False; pred ]
      else
        frequency
          [ (2, pred);
            (1, map (fun f -> Formula.Not f) (self (size / 2)));
            (1, map2 (fun f g -> Formula.And (f, g)) (self (size / 2)) (self (size / 2)));
            (1, map2 (fun f g -> Formula.Or (f, g)) (self (size / 2)) (self (size / 2)));
            (1, map2 (fun f g -> Formula.Implies (f, g)) (self (size / 2)) (self (size / 2)));
            (1, map (fun f -> Formula.Prev f) (self (size / 2)));
            (1, map (fun f -> Formula.Once f) (self (size / 2)));
            (1, map (fun f -> Formula.Historically f) (self (size / 2)));
            (1, map2 (fun f g -> Formula.Since (f, g)) (self (size / 2)) (self (size / 2)));
            (1, map2 (fun f g -> Formula.Interval (f, g)) (self (size / 2)) (self (size / 2)));
            (1, map (fun f -> Formula.Start f) (self (size / 2)));
            (1, map (fun f -> Formula.End f) (self (size / 2))) ]))

let gen_formula = QCheck.Gen.sized gen_formula_sized

(* FSM synthesis enumerates reachable monitor states, exponential in the
   worst case; keep its inputs small. *)
let gen_small_formula = QCheck.Gen.(sized_size (int_range 0 8) gen_formula_sized)

let gen_trace =
  QCheck.Gen.(
    list_size (int_range 1 12)
      (map2 (fun x y -> st [ ("x", x); ("y", y) ]) (int_bound 2) (int_bound 2)))

let arb_formula_trace =
  QCheck.make
    ~print:(fun (f, tr) ->
      Format.asprintf "%a over %a" Formula.pp f
        (Format.pp_print_list State.pp)
        tr)
    QCheck.Gen.(pair gen_formula gen_trace)

let prop_monitor_equals_semantics =
  QCheck.Test.make ~name:"synthesized monitor = direct semantics" ~count:1000
    arb_formula_trace (fun (f, tr) ->
      let compiled = Monitor.compile f in
      let expected = Semantics.eval f (Array.of_list tr) in
      let rec drive i mstate = function
        | [] -> true
        | s :: rest ->
            let mstate =
              match mstate with
              | None -> Monitor.init compiled s
              | Some m -> Monitor.step compiled m s
            in
            Monitor.verdict compiled mstate = expected.(i) && drive (i + 1) (Some mstate) rest
      in
      drive 0 None tr)

let prop_monitor_state_determinism =
  QCheck.Test.make ~name:"monitor state is a function of the trace" ~count:300
    arb_formula_trace (fun (f, tr) ->
      let compiled = Monitor.compile f in
      let run () =
        List.fold_left
          (fun m s ->
            match m with
            | None -> Some (Monitor.init compiled s)
            | Some m -> Some (Monitor.step compiled m s))
          None tr
      in
      match (run (), run ()) with
      | Some a, Some b -> Monitor.equal_state a b && Monitor.compare_state a b = 0
      | None, None -> tr = []
      | _ -> false)

(* {1 Formula parser} *)

let formula =
  Alcotest.testable (Fmt.of_to_string Formula.to_string) Formula.equal

let test_fparser_basics () =
  Alcotest.check formula "predicate" (atom "x" 1) (Fparser.parse "x == 1");
  Alcotest.check formula "interval"
    (Formula.Interval (atom "p" 1, atom "q" 1))
    (Fparser.parse "[p == 1, q == 1)");
  Alcotest.check formula "implication right assoc"
    (Formula.Implies (Formula.True, Formula.Implies (Formula.False, Formula.True)))
    (Fparser.parse "true ==> false ==> true");
  Alcotest.check formula "landing spec concrete syntax" Formula.landing_spec
    (Fparser.parse "(start landing == 1) ==> [approved == 1, radio == 0)");
  Alcotest.check formula "xyz spec concrete syntax" Formula.xyz_spec
    (Fparser.parse "x > 0 ==> [y == 0, y > z)")

let test_fparser_parenthesized_predicate () =
  Alcotest.check formula "(x + 1) > 0 is a predicate"
    (Formula.cmp Predicate.Gt (Predicate.Add (Predicate.Var "x", Predicate.Const 1))
       (Predicate.Const 0))
    (Fparser.parse "(x + 1) > 0");
  Alcotest.check formula "(x > 0) is a formula"
    (Formula.cmp Predicate.Gt (Predicate.Var "x") (Predicate.Const 0))
    (Fparser.parse "(x > 0)")

let test_fparser_errors () =
  List.iter
    (fun src ->
      match Fparser.parse src with
      | exception Fparser.Error _ -> ()
      | f -> Alcotest.failf "expected error for %S, got %s" src (Formula.to_string f))
    [ ""; "x =="; "[x == 1)"; "x == 1)"; "prev"; "x ==> "; "x @ y" ]

let prop_fparser_roundtrip =
  QCheck.Test.make ~name:"parse (to_string f) = f" ~count:500
    (QCheck.make ~print:Formula.to_string gen_formula) (fun f ->
      Formula.equal f (Fparser.roundtrip f))

(* {1 Patterns} *)

let check_trace f ls expected =
  Alcotest.(check (option int)) "violation index" expected
    (Semantics.first_violation f (List.map st ls))

let test_pattern_absence () =
  let f = Patterns.absence (atom "err" 1) in
  check_trace f [ []; [ ("err", 0) ] ] None;
  check_trace f [ []; [ ("err", 1) ]; [ ("err", 0) ] ] (Some 1);
  (* absence is latching: the trace stays bad after the occurrence *)
  Alcotest.(check bool) "latching" true
    (Semantics.first_violation f (List.map st [ []; [ ("err", 1) ]; [ ("err", 0) ] ])
    = Some 1)

let test_pattern_precedence () =
  let f = Patterns.precedence ~cause:(atom "req" 1) ~effect:(atom "ack" 1) in
  check_trace f [ [ ("req", 1) ]; [ ("req", 0); ("ack", 1) ] ] None;
  check_trace f [ [ ("ack", 1) ] ] (Some 0)

let test_pattern_interval_since () =
  (* Example 1 is exactly this pattern. *)
  let f =
    Patterns.interval_since
      ~trigger:(Formula.Start (atom "landing" 1))
      ~opened:(atom "approved" 1) ~closed:(atom "radio" 0)
  in
  Alcotest.(check bool) "matches the paper spec" true
    (Formula.equal f Formula.landing_spec)

let test_pattern_response_guard () =
  let f = Patterns.response_guard ~request:(atom "req" 1) ~forbidden:(atom "err" 1) in
  check_trace f [ [ ("req", 1) ]; [ ("req", 0) ] ] None;
  check_trace f [ [ ("req", 1) ]; [ ("req", 0); ("err", 1) ] ] (Some 1);
  (* an error before any request is fine *)
  check_trace f [ [ ("err", 1) ]; [ ("err", 0); ("req", 1) ] ] None

let test_pattern_mutex () =
  let f = Patterns.mutual_exclusion (atom "in0" 1) (atom "in1" 1) in
  check_trace f [ [ ("in0", 1) ]; [ ("in0", 0); ("in1", 1) ] ] None;
  check_trace f [ [ ("in0", 1); ("in1", 1) ] ] (Some 0)

let test_pattern_non_decreasing_and_rising () =
  let f = Patterns.non_decreasing "v" in
  check_trace f [ [ ("v", 0) ]; [ ("v", 1) ]; [ ("v", 2) ] ] None;
  check_trace f [ [ ("v", 1) ]; [ ("v", 0) ] ] (Some 1);
  let r = Patterns.rising "v" in
  let tr = trace_of_lists [ [ ("v", 0) ]; [ ("v", 3) ]; [ ("v", 3) ] ] in
  Alcotest.(check (list bool)) "rising edge only" [ false; true; false ]
    (Array.to_list (Semantics.eval r tr))

(* {1 FSM synthesis} *)

let test_fsm_shapes () =
  let fsm = Fsm.synthesize Formula.landing_spec in
  Alcotest.(check int) "three atoms" 3 (List.length (Fsm.atoms fsm));
  Alcotest.(check int) "alphabet 8" 8 (Fsm.alphabet_size fsm);
  Alcotest.(check bool) "few states" true (Fsm.state_count fsm <= 16);
  let minimized = Fsm.minimize fsm in
  Alcotest.(check bool) "minimize does not grow" true
    (Fsm.state_count minimized <= Fsm.state_count fsm)

let test_fsm_true_false () =
  let t = Fsm.synthesize Formula.True in
  Alcotest.(check int) "true: one state" 1 (Fsm.state_count (Fsm.minimize t));
  Alcotest.(check bool) "true verdict" true (Fsm.verdict t (Fsm.initial t 0));
  let f = Fsm.synthesize Formula.False in
  Alcotest.(check bool) "false verdict" false (Fsm.verdict f (Fsm.initial f 0))

let test_fsm_runs_paper_examples () =
  let fsm = Fsm.synthesize Formula.landing_spec in
  let states values =
    List.map (fun (l, a, r) -> st [ ("landing", l); ("approved", a); ("radio", r) ]) values
  in
  let ok = states [ (0, 0, 1); (0, 1, 1); (1, 1, 1); (1, 1, 0) ] in
  Alcotest.(check (list bool)) "observed run accepted" [ true; true; true; true ]
    (Fsm.run fsm ok);
  let bad = states [ (0, 0, 1); (0, 1, 1); (0, 1, 0); (1, 1, 0) ] in
  Alcotest.(check bool) "violating run rejected at the end" false
    (List.nth (Fsm.run fsm bad) 3)

let test_fsm_atom_budget () =
  (* 21 distinct atoms exceed the alphabet budget. *)
  let big =
    List.init 21 (fun i -> atom (Printf.sprintf "v%d" i) 1)
    |> List.fold_left (fun acc f -> Formula.And (acc, f)) Formula.True
  in
  match Fsm.synthesize big with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected atom-budget rejection"

let arb_small_formula_trace =
  QCheck.make
    ~print:(fun (f, tr) ->
      Format.asprintf "%a over %a" Formula.pp f (Format.pp_print_list State.pp) tr)
    QCheck.Gen.(pair gen_small_formula gen_trace)

let prop_fsm_equals_monitor =
  QCheck.Test.make ~name:"FSM = synthesized monitor = semantics" ~count:400
    arb_small_formula_trace (fun (f, tr) ->
      let fsm = Fsm.synthesize ~max_states:100_000 f in
      let expected = Array.to_list (Semantics.eval f (Array.of_list tr)) in
      Fsm.run fsm tr = expected)

let prop_fsm_minimize_preserves =
  QCheck.Test.make ~name:"minimized FSM accepts the same traces" ~count:400
    arb_small_formula_trace (fun (f, tr) ->
      let fsm = Fsm.synthesize ~max_states:100_000 f in
      Fsm.run (Fsm.minimize fsm) tr = Fsm.run fsm tr)

let prop_fsm_minimize_minimal =
  QCheck.Test.make ~name:"minimization is idempotent" ~count:200
    (QCheck.make ~print:Formula.to_string gen_small_formula) (fun f ->
      let m = Fsm.minimize (Fsm.synthesize ~max_states:100_000 f) in
      Fsm.state_count (Fsm.minimize m) = Fsm.state_count m)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_monitor_equals_semantics; prop_monitor_state_determinism; prop_fparser_roundtrip;
      prop_fsm_equals_monitor; prop_fsm_minimize_preserves; prop_fsm_minimize_minimal ]

let () =
  Alcotest.run "pastltl"
    [ ( "state",
        [ Alcotest.test_case "basics" `Quick test_state_basics ] );
      ( "predicate",
        [ Alcotest.test_case "evaluation" `Quick test_predicates ] );
      ( "formula",
        [ Alcotest.test_case "vars and size" `Quick test_formula_vars_and_size ] );
      ( "semantics",
        [ Alcotest.test_case "prev" `Quick test_semantics_prev;
          Alcotest.test_case "once/historically" `Quick test_semantics_once_historically;
          Alcotest.test_case "since" `Quick test_semantics_since;
          Alcotest.test_case "interval" `Quick test_semantics_interval;
          Alcotest.test_case "start/end" `Quick test_semantics_start_end;
          Alcotest.test_case "first violation" `Quick test_first_violation;
          Alcotest.test_case "landing spec" `Quick test_landing_spec_runs;
          Alcotest.test_case "xyz spec" `Quick test_xyz_spec_runs ] );
      ( "patterns",
        [ Alcotest.test_case "absence" `Quick test_pattern_absence;
          Alcotest.test_case "precedence" `Quick test_pattern_precedence;
          Alcotest.test_case "interval since = Example 1" `Quick
            test_pattern_interval_since;
          Alcotest.test_case "response guard" `Quick test_pattern_response_guard;
          Alcotest.test_case "mutual exclusion" `Quick test_pattern_mutex;
          Alcotest.test_case "non-decreasing and rising" `Quick
            test_pattern_non_decreasing_and_rising ] );
      ( "fsm",
        [ Alcotest.test_case "shapes" `Quick test_fsm_shapes;
          Alcotest.test_case "true/false" `Quick test_fsm_true_false;
          Alcotest.test_case "paper examples" `Quick test_fsm_runs_paper_examples;
          Alcotest.test_case "atom budget" `Quick test_fsm_atom_budget ] );
      ( "fparser",
        [ Alcotest.test_case "basics" `Quick test_fparser_basics;
          Alcotest.test_case "parenthesized predicate" `Quick
            test_fparser_parenthesized_predicate;
          Alcotest.test_case "errors" `Quick test_fparser_errors ] );
      ("properties", properties) ]
