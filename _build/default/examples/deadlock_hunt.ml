(* Deadlock prediction: from a single successful execution of two bank
   transfers that take their locks in opposite orders, the lock-order
   graph predicts the deadlock; exhaustive exploration then produces the
   schedule that actually hangs — and shows the fix (consistent lock
   order) is deadlock-free under every schedule.

   Run with: dune exec examples/deadlock_hunt.exe *)

let serial =
  Tml.Sched.make_raw ~name:"serial"
    ~pick_fn:(fun runnable -> List.hd runnable)
    ~choose_fn:(fun _ -> 0)

let () =
  print_endline "== opposite lock orders ==";
  print_endline (Option.get (Tml.Programs.source_of_name "bank-transfer"));
  let r = Tml.Vm.run_program ~sched:serial Tml.Programs.bank_transfer in
  Format.printf "observed (serial) run: %a@." Tml.Vm.pp_outcome r.Tml.Vm.outcome;
  let report = Predict.Lockgraph.analyze (Option.get r.Tml.Vm.exec) in
  Format.printf "%a@.@." Predict.Lockgraph.pp_report report;
  assert (not (Predict.Lockgraph.deadlock_free report));
  print_endline "Exhaustive exploration confirms the prediction:";
  let explored = Tml.Explore.all_program_runs Tml.Programs.bank_transfer in
  List.iter
    (fun (outcome, n) ->
      Format.printf "  %4d schedules end in: %a@." n Tml.Vm.pp_outcome outcome)
    (Tml.Explore.count_outcomes explored);
  let deadlocking =
    List.find_opt
      (fun (_, (res : Tml.Vm.run_result)) ->
        match res.Tml.Vm.outcome with Tml.Vm.Deadlocked _ -> true | _ -> false)
      explored.Tml.Explore.runs
  in
  (match deadlocking with
  | Some (script, _) ->
      Format.printf "  a deadlocking schedule: %a@.@." Tml.Sched.pp_script script
  | None -> print_endline "  (no deadlock found?!)");
  print_endline "== consistent lock order (the fix) ==";
  let r2 = Tml.Vm.run_program ~sched:serial Tml.Programs.bank_transfer_ordered in
  let report2 = Predict.Lockgraph.analyze (Option.get r2.Tml.Vm.exec) in
  Format.printf "%a@." Predict.Lockgraph.pp_report report2;
  assert (Predict.Lockgraph.deadlock_free report2);
  let explored2 = Tml.Explore.all_program_runs Tml.Programs.bank_transfer_ordered in
  Format.printf "and indeed all %d schedules complete.@."
    (List.length explored2.Tml.Explore.runs)
