examples/atomicity_audit.mli:
