examples/online_observer.ml: Dsim Format List Mvc Observer Option Pastltl Predict Tml Trace
