examples/deadlock_hunt.ml: Format List Option Predict Tml
