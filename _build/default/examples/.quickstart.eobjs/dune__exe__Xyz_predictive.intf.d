examples/xyz_predictive.mli:
