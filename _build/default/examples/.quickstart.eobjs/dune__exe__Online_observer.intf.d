examples/online_observer.mli:
