examples/dynamic_threads.ml: Dvclock Format List Mvc Option Predict Printf String Tml Trace
