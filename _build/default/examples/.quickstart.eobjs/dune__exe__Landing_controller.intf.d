examples/landing_controller.mli:
