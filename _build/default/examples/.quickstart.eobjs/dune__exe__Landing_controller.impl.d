examples/landing_controller.ml: Format Jmpax List Option Pastltl Tml
