examples/quickstart.ml: Format Jmpax
