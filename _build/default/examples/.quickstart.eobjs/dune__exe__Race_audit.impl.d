examples/race_audit.ml: Format List Option Predict String Tml
