examples/quickstart.mli:
