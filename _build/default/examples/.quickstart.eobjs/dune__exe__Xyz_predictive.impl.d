examples/xyz_predictive.ml: Format Jmpax Option Pastltl Tml Trace
