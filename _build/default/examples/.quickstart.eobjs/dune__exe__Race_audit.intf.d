examples/race_audit.mli:
