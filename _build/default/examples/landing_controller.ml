(* The paper's Example 1 (Figs. 1 and 5): a buggy flight controller.

   The observed, successful execution approves the landing, starts it,
   and only then loses the radio. JMPaX nevertheless predicts TWO
   violating schedules from that single run — radio loss before
   approval, and between approval and landing — which are exactly the
   counterexamples the paper reports.

   Run with: dune exec examples/landing_controller.exe *)

let () =
  print_endline "== Example 1: flight controller (paper Figs. 1 and 5) ==\n";
  print_endline "Program:";
  print_endline (Option.get (Tml.Programs.source_of_name "landing"));
  Format.printf "Specification: %a@.@." Pastltl.Formula.pp Pastltl.Formula.landing_spec;
  print_string
    (Jmpax.Report.example_report ~spec:Pastltl.Formula.landing_spec
       ~program:Tml.Programs.landing_bounded ~script:Tml.Programs.landing_observed);
  print_endline "\nNow the same check on the full controller (radio checked in a loop)";
  print_endline "across random schedules — the paper's point is the detection gap:\n";
  print_string
    (Jmpax.Report.detection_table ~spec:Pastltl.Formula.landing_spec
       ~program:(Tml.Programs.landing_full ~rounds:3)
       ~seeds:(List.init 15 (fun i -> i)))
