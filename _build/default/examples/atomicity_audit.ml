(* Predictive atomicity audit: a bank account whose balance check and
   withdrawal sit in ONE sync block is serializable; splitting them into
   two blocks — or leaving a remote access unlocked — is flagged from a
   single serial run, before any bad interleaving ever executes.

   Run with: dune exec examples/atomicity_audit.exe *)

let serial =
  Tml.Sched.make_raw ~name:"serial"
    ~pick_fn:(fun runnable -> List.hd runnable)
    ~choose_fn:(fun _ -> 0)

let audit name src =
  Format.printf "== %s ==@." name;
  let program = Tml.Parser.parse_program src in
  let r = Tml.Vm.run_program ~sched:serial program in
  Format.printf "serial run: %a, balance = %d@." Tml.Vm.pp_outcome r.Tml.Vm.outcome
    (List.assoc "balance" r.Tml.Vm.final);
  let report = Predict.Atomicity.analyze (Option.get r.Tml.Vm.exec) in
  Format.printf "%a@.@." Predict.Atomicity.pp_report report;
  report

let () =
  let atomic =
    audit "withdrawal inside one sync block"
      {| shared balance = 100;
         thread alice { sync (acct) { if (balance >= 60) { balance = balance - 60; } } }
         thread bob   { sync (acct) { if (balance >= 60) { balance = balance - 60; } } } |}
  in
  assert (Predict.Atomicity.serializable atomic);

  let racy_deposit =
    audit "audit thread reads balance without the lock"
      {| shared balance = 100, snapshot = 0;
         thread alice { sync (acct) { balance = balance - 60; balance = balance + 1; } }
         thread auditor { snapshot = balance; } |}
  in
  assert (not (Predict.Atomicity.serializable racy_deposit));
  print_endline
    "The auditor can observe the dirty intermediate balance (W-R-W): predicted\n\
     from the serial run, where the auditor actually ran after everything.";

  (* Races and atomicity are different lenses on the same causality: the
     unlocked snapshot is also a data race. *)
  let program =
    Tml.Parser.parse_program
      {| shared balance = 100, snapshot = 0;
         thread alice { sync (acct) { balance = balance - 60; balance = balance + 1; } }
         thread auditor { snapshot = balance; } |}
  in
  let r = Tml.Vm.run_program ~sched:serial program in
  let races = Predict.Race.detect (Option.get r.Tml.Vm.exec) in
  Format.printf "@.and the same access is a data race: %s@."
    (String.concat ", " races.Predict.Race.racy_vars)
