(* Predictive data-race audit: the detector flags racy accesses from a
   single run even when that run serialized them safely, and stays quiet
   once a lock protects the counter.

   Run with: dune exec examples/race_audit.exe *)

let serial =
  Tml.Sched.make_raw ~name:"serial"
    ~pick_fn:(fun runnable -> List.hd runnable)
    ~choose_fn:(fun _ -> 0)

let audit name program =
  Format.printf "== %s ==@." name;
  let r = Tml.Vm.run_program ~sched:serial program in
  Format.printf "observed run: %a, final state:" Tml.Vm.pp_outcome r.Tml.Vm.outcome;
  List.iter (fun (x, v) -> Format.printf " %s=%d" x v) r.Tml.Vm.final;
  Format.printf "@.";
  let report = Predict.Race.detect (Option.get r.Tml.Vm.exec) in
  Format.printf "%a@.@." Predict.Race.pp_report report;
  report

let () =
  print_endline "The serial schedule runs each thread to completion, so the observed";
  print_endline "run can never exhibit the race — prediction must find it anyway.\n";
  let racy = audit "unprotected counter" (Tml.Programs.racy_counter ~increments:2) in
  let locked = audit "lock-protected counter" (Tml.Programs.locked_counter ~increments:2) in
  let sketch = audit "naive flag mutual exclusion" Tml.Programs.dekker_sketch in
  assert (not (Predict.Race.race_free racy));
  assert (Predict.Race.race_free locked);
  assert (not (Predict.Race.race_free sketch));
  (* Show that the predicted race is real: exhaustive exploration finds
     a schedule that loses an update. *)
  print_endline "Confirming the prediction by exhaustive exploration:";
  let explored = Tml.Explore.all_program_runs (Tml.Programs.racy_counter ~increments:1) in
  let finals =
    List.map
      (fun (_, (r : Tml.Vm.run_result)) -> List.assoc "counter" r.Tml.Vm.final)
      explored.Tml.Explore.runs
    |> List.sort_uniq compare
  in
  Format.printf "  final counter values over all %d schedules: %s@."
    (List.length explored.Tml.Explore.runs)
    (String.concat ", " (List.map string_of_int finals));
  Format.printf "  (2 increments issued; a final value of 1 is the lost update)@."
