(* The paper's Example 2 (Fig. 6): two threads over x, y, z.

       T1: x = x + 1;  y = x + 1        T2: z = x + 1;  x = x + 1

   starting from (x,y,z) = (-1,0,0), monitored against
       (x > 0) ==> [y == 0, y > z).

   The observed execution is fine; the computation lattice contains
   three runs, one of which (the paper's "rightmost") violates the
   property. This example also demonstrates that the verdict is immune
   to message reordering between program and observer.

   Run with: dune exec examples/xyz_predictive.exe *)

let () =
  print_endline "== Example 2: the x/y/z program (paper Fig. 6) ==\n";
  print_endline "Program:";
  print_endline (Option.get (Tml.Programs.source_of_name "xyz"));
  Format.printf "Specification: %a@.@." Pastltl.Formula.pp Pastltl.Formula.xyz_spec;
  print_string
    (Jmpax.Report.example_report ~spec:Pastltl.Formula.xyz_spec ~program:Tml.Programs.xyz
       ~script:Tml.Programs.xyz_observed);
  (* Same analysis with an adversarial delivery channel. *)
  print_endline "\nWith fully shuffled message delivery (seed 7):";
  let config =
    Jmpax.Config.default ()
    |> Jmpax.Config.with_sched (Tml.Sched.of_script Tml.Programs.xyz_observed)
    |> Jmpax.Config.with_channel (Jmpax.Config.Shuffled 7)
  in
  let output =
    Jmpax.Pipeline.check ~config ~spec:Pastltl.Formula.xyz_spec Tml.Programs.xyz
  in
  Format.printf
    "  delivery order: %a@.  verdicts unchanged: observed %s, predicted %s@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (m : Trace.Message.t) -> Format.fprintf ppf "%s=%d" m.var m.value))
    output.Jmpax.Pipeline.delivered
    (if output.Jmpax.Pipeline.observed_ok then "clean" else "violation")
    (if Jmpax.Pipeline.predicted_violation output then "VIOLATION" else "clean")
