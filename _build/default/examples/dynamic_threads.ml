(* Dynamic thread creation (paper, Section 2: the technique "can be
   easily extended to systems consisting of a variable number of
   threads").

   Two layers reproduce the extension:

   - at the language level, TML's [spawn]/[join] desugar onto the fixed
     thread pool with happens-before handshakes over dummy
     synchronization variables, so all the fixed-dimension machinery
     (Algorithm A, the observer, prediction) applies unchanged;

   - at the clock level, [Mvc.Dynamic] runs Algorithm A over sparse
     vector clocks for genuinely unbounded thread populations.

   Run with: dune exec examples/dynamic_threads.exe *)

let serial =
  Tml.Sched.make_raw ~name:"serial"
    ~pick_fn:(fun runnable -> List.hd runnable)
    ~choose_fn:(fun _ -> 0)

let () =
  print_endline "== fork/join over the fixed pool ==";
  let program = Tml.Programs.fork_join ~workers:3 in
  List.iter
    (fun seed ->
      let r = Tml.Vm.run_program ~sched:(Tml.Sched.random ~seed) program in
      Printf.printf "  seed %d: %s, total = %d\n" seed
        (Format.asprintf "%a" Tml.Vm.pp_outcome r.Tml.Vm.outcome)
        (List.assoc "total" r.Tml.Vm.final))
    [ 1; 2; 3 ];
  print_endline "  (1*1 + 2*2 + 3*3 = 14 under every schedule: join orders the sum)";

  print_endline "\n== spawning does not synchronize later accesses ==";
  let r = Tml.Vm.run_program ~sched:serial Tml.Programs.spawn_unsynchronized in
  let report = Predict.Race.detect (Option.get r.Tml.Vm.exec) in
  Format.printf "%a@." Predict.Race.pp_report report;
  assert (report.Predict.Race.racy_vars = [ "cell" ]);
  print_endline "  (the pre-spawn write is ordered; only the post-spawn write races)";

  print_endline "\n== sparse clocks for an unbounded population ==";
  (* A root thread forks a worker per request; ids never declared
     anywhere up front. *)
  let algo = Mvc.Dynamic.create ~relevance:Mvc.Relevance.all_writes in
  let emit tid x v =
    match Mvc.Dynamic.process algo tid (Trace.Event.Write (x, v)) with
    | Some clock -> Format.printf "  T%d writes %s=%d at %a@." tid x v Dvclock.pp clock
    | None -> ()
  in
  emit 0 "work" 1;
  Mvc.Dynamic.spawn algo ~parent:0 ~child:17;
  emit 17 "result17" 10;
  Mvc.Dynamic.spawn algo ~parent:0 ~child:99;
  emit 99 "result99" 20;
  Mvc.Dynamic.join algo ~parent:0 ~child:17;
  emit 0 "work" 2;
  Format.printf "  threads seen: %s@."
    (String.concat ", "
       (List.map string_of_int (Mvc.Dynamic.threads_seen algo)));
  let c17 = Mvc.Dynamic.thread_clock algo 17 in
  let c99 = Mvc.Dynamic.thread_clock algo 99 in
  Format.printf "  workers 17 and 99 are concurrent: %b@." (Dvclock.concurrent c17 c99)
