(* Quickstart: write a tiny multithreaded program, state a safety
   property, run the program ONCE, and let the predictive analyzer check
   every causally consistent reordering of that one run.

   The writer publishes a payload and then raises a flag; the consumer
   clears the buffer without checking the flag. Under the observed
   schedule the clear happens last and everything looks fine — but the
   clear is causally concurrent with the flag, so in another schedule
   the flag goes up over an empty buffer. The baseline (observed-run)
   monitor sees nothing; the predictive analyzer reports the violation.

   Run with: dune exec examples/quickstart.exe *)

let program =
  {|
  shared ready = 0, data = 0;

  thread writer {
    data = 42;        // publish the payload...
    ready = 1;        // ...then raise the flag
  }

  thread consumer {
    nop;              // unrelated work
    data = 0;         // clear the buffer -- without checking the flag!
  }
|}

(* "Whenever ready goes up, the payload is published and has not been
   cleared since." *)
let spec = "start ready == 1 ==> [data == 42, data == 0)"

let () =
  let output = Jmpax.Pipeline.check_source ~spec program in
  Format.printf "%a@." Jmpax.Pipeline.pp_output output;
  if Jmpax.Pipeline.missed_by_baseline output then
    print_endline
      "\nThe observed run was clean, but some reordering of it violates the\n\
       spec: only the predictive analyzer sees the bug."
  else if Jmpax.Pipeline.predicted_violation output then
    print_endline "\nViolation predicted (and the observed run itself exhibits it)."
  else print_endline "\nNo interleaving of this computation can violate the spec.";
  assert (Jmpax.Pipeline.missed_by_baseline output)
