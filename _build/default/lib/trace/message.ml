type t = {
  eid : int;
  tid : Types.tid;
  var : Types.var;
  value : Types.value;
  mvc : Vclock.t;
}

let make ~eid ~tid ~var ~value ~mvc =
  assert (Vclock.get mvc tid >= 1);
  { eid; tid; var; value; mvc }

let seq m = Vclock.get m.mvc m.tid
let equal a b = a.eid = b.eid && a.tid = b.tid && Vclock.equal a.mvc b.mvc
let compare a b = Stdlib.compare (a.eid, a.tid, a.var, a.value) (b.eid, b.tid, b.var, b.value)

let causally_precedes m m' =
  (not (equal m m')) && Vclock.get m.mvc m.tid <= Vclock.get m'.mvc m.tid

let concurrent m m' = (not (causally_precedes m m')) && not (causally_precedes m' m)

let pp ppf m =
  Format.fprintf ppf "<%a=%d, %a, %a>" Types.pp_var m.var m.value Types.pp_tid m.tid
    Vclock.pp m.mvc
