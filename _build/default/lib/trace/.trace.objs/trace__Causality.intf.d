lib/trace/causality.mli: Event Exec Types
