lib/trace/types.ml: Format String
