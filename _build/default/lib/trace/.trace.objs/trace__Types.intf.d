lib/trace/types.mli: Format
