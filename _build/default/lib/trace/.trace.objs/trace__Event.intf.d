lib/trace/event.mli: Format Types
