lib/trace/causality.ml: Array Event Exec List String
