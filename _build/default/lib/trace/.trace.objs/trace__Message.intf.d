lib/trace/message.mli: Format Types Vclock
