lib/trace/event.ml: Format Stdlib String Types
