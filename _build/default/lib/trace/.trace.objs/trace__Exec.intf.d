lib/trace/exec.mli: Event Format Types
