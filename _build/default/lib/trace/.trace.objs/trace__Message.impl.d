lib/trace/message.ml: Format Stdlib Types Vclock
