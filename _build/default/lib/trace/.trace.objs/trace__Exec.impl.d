lib/trace/exec.ml: Array Event Format List Set String Types
