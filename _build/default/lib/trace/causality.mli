(** Brute-force computation of the causal partial order [≺] of a recorded
    execution (paper, Section 2.2) and of the relevant causality
    [⊳ = ≺ ∩ (R × R)] (Section 2.3).

    This module materializes the full transitive closure in O(r³) time and
    O(r²) space and is intended as the {e ground-truth oracle} for testing
    Algorithm A (which computes the same relation online in O(r·n)); it is
    not used on the hot path. *)

type t

val compute : Exec.t -> t
(** Builds [≺] from its definition:
    - [e{^k}{_i} ≺ e{^l}{_i}] when [k < l] (program order);
    - [e ≺ e'] when both access the same variable, at least one is a
      write, and [e] occurs first (access order);
    - transitive closure of the above. *)

val precedes : t -> int -> int -> bool
(** [precedes c eid eid'] iff the event with id [eid] strictly causally
    precedes the one with id [eid']. Irreflexive. *)

val concurrent : t -> int -> int -> bool
(** [e || e']: neither precedes the other and they are distinct. *)

val relevant_precedes : t -> relevant:(Event.t -> bool) -> int -> int -> bool
(** The relation [⊳]: both events relevant and [precedes]. *)

val check_partial_order : t -> bool
(** Sanity: irreflexivity and transitivity of the closed relation. *)

val predecessors : t -> int -> int list
(** Event ids strictly preceding the given event, ascending. *)

val downset_count : t -> relevant:(Event.t -> bool) -> int -> Types.tid -> int
(** [downset_count c ~relevant eid j] is the number of relevant events of
    thread [j] that causally precede event [eid], {e including} [eid]
    itself when it is a relevant event of thread [j] — i.e. the value
    requirement (a) of the paper prescribes for [V_i\[j\]] right after the
    event is processed. *)
