(** Messages [⟨e, i, V⟩] emitted by Algorithm A to the observer.

    Only {e relevant} events are emitted (in JMPaX, writes of variables
    that the monitored specification mentions). The message carries the
    state-update information — the variable written and its new value —
    plus the emitting thread and its MVC at emission time. By Theorem 3,
    for two messages [m], [m'] we have [e ⊳ e'] iff
    [Vclock.get m.mvc m.tid <= Vclock.get m'.mvc m.tid]. *)

type t = {
  eid : int;  (** observed-execution position, carried for traceability *)
  tid : Types.tid;  (** the [i] of [⟨e, i, V⟩] *)
  var : Types.var;
  value : Types.value;
  mvc : Vclock.t;  (** the emitting thread's MVC [V_i] after the update *)
}

val make :
  eid:int -> tid:Types.tid -> var:Types.var -> value:Types.value -> mvc:Vclock.t -> t

val seq : t -> int
(** [seq m = Vclock.get m.mvc m.tid]: the index (1-based) of this relevant
    event among the relevant events of its thread. *)

val causally_precedes : t -> t -> bool
(** The Theorem 3 test: [causally_precedes m m'] iff [e ⊳ e'].
    Reflexive on distinct messages of the same thread ordering; returns
    [false] on [m = m'] only when comparing a message with itself is
    meaningless, so callers should treat it as [e ⊳ e'] for [e ≠ e']. *)

val concurrent : t -> t -> bool
(** Neither causally precedes the other. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
