type t = {
  nthreads : int;
  events : Event.t array;
  init : (Types.var * Types.value) list;
}

type builder = {
  b_nthreads : int;
  b_init : (Types.var * Types.value) list;
  mutable rev_events : Event.t list;
  mutable next_eid : int;
  pos : int array;  (* next per-thread position, 1-based *)
}

let builder ~nthreads ~init =
  if nthreads <= 0 then invalid_arg "Exec.builder: nthreads must be positive";
  { b_nthreads = nthreads; b_init = init; rev_events = []; next_eid = 0;
    pos = Array.make nthreads 1 }

let push b tid kind =
  if tid < 0 || tid >= b.b_nthreads then invalid_arg "Exec: thread id out of range";
  let e = Event.{ eid = b.next_eid; tid; pos = b.pos.(tid); kind } in
  b.rev_events <- e :: b.rev_events;
  b.next_eid <- b.next_eid + 1;
  b.pos.(tid) <- b.pos.(tid) + 1;
  e

let add_internal b tid = push b tid Event.Internal
let add_read b tid x v = push b tid (Event.Read (x, v))
let add_write b tid x v = push b tid (Event.Write (x, v))

let freeze b =
  { nthreads = b.b_nthreads;
    events = Array.of_list (List.rev b.rev_events);
    init = b.b_init }

let nthreads m = m.nthreads
let length m = Array.length m.events
let events m = m.events

let event m eid =
  if eid < 0 || eid >= Array.length m.events then invalid_arg "Exec.event: out of bounds";
  m.events.(eid)

let init m = m.init

let init_value m x =
  match List.assoc_opt x m.init with Some v -> v | None -> 0

let variables m =
  let module S = Set.Make (String) in
  let s = List.fold_left (fun s (x, _) -> S.add x s) S.empty m.init in
  let s =
    Array.fold_left
      (fun s e -> match Event.variable e with Some x -> S.add x s | None -> s)
      s m.events
  in
  S.elements s

let thread_events m tid =
  Array.to_list m.events |> List.filter (fun e -> e.Event.tid = tid)

let pp ppf m =
  Format.fprintf ppf "@[<v>exec (%d threads, %d events)@," m.nthreads (length m);
  Array.iter (fun e -> Format.fprintf ppf "  %a@," Event.pp e) m.events;
  Format.fprintf ppf "@]"
