(** A recorded multithreaded execution [M = e1 e2 ... er] (paper,
    Section 2.1): the flat, totally ordered sequence of events as they
    happened, together with the number of threads and the initial values
    of the shared variables.

    Executions are produced by the TML virtual machine and consumed by
    the brute-force causality oracle ({!Causality}) and by tests. *)

type t

(** {1 Construction} *)

type builder

val builder : nthreads:int -> init:(Types.var * Types.value) list -> builder
(** A fresh builder. Event ids and per-thread positions are assigned
    automatically in append order.
    @raise Invalid_argument if [nthreads <= 0]. *)

val add_internal : builder -> Types.tid -> Event.t
val add_read : builder -> Types.tid -> Types.var -> Types.value -> Event.t
val add_write : builder -> Types.tid -> Types.var -> Types.value -> Event.t

val freeze : builder -> t

(** {1 Observation} *)

val nthreads : t -> int
val length : t -> int
val events : t -> Event.t array
(** Events in observed order; [e.eid] equals the array index. *)

val event : t -> int -> Event.t
(** [event m eid].
    @raise Invalid_argument if out of bounds. *)

val init : t -> (Types.var * Types.value) list
val init_value : t -> Types.var -> Types.value
(** Initial value of a variable, [0] if not declared. *)

val variables : t -> Types.var list
(** All shared variables accessed or declared, sorted. *)

val thread_events : t -> Types.tid -> Event.t list
(** Events of one thread, in program order. *)

val pp : Format.formatter -> t -> unit
