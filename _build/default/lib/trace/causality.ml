type t = { exec : Exec.t; reach : bool array array }

(* reach.(a).(b) iff event a strictly causally precedes event b. *)

let compute exec =
  let r = Exec.length exec in
  let evs = Exec.events exec in
  let reach = Array.init r (fun _ -> Array.make r false) in
  (* Direct edges. Observed order means a < b implies evs.(a) occurs
     before evs.(b), so only pairs a < b need be considered. *)
  for b = 0 to r - 1 do
    for a = 0 to b - 1 do
      let ea = evs.(a) and eb = evs.(b) in
      let program_order = ea.Event.tid = eb.Event.tid in
      let variable_conflict =
        match (Event.variable ea, Event.variable eb) with
        | Some x, Some y ->
            String.equal x y && (Event.is_write ea || Event.is_write eb)
        | _ -> false
      in
      if program_order || variable_conflict then reach.(a).(b) <- true
    done
  done;
  (* Transitive closure; edges only go forward in observed order, so a
     single ascending sweep closes the relation. *)
  for b = 0 to r - 1 do
    for a = 0 to b - 1 do
      if reach.(a).(b) then
        for c = b + 1 to r - 1 do
          if reach.(b).(c) then reach.(a).(c) <- true
        done
    done
  done;
  { exec; reach }

let check_bounds c eid =
  if eid < 0 || eid >= Exec.length c.exec then invalid_arg "Causality: event id out of bounds"

let precedes c a b =
  check_bounds c a;
  check_bounds c b;
  c.reach.(a).(b)

let concurrent c a b = a <> b && (not (precedes c a b)) && not (precedes c b a)

let relevant_precedes c ~relevant a b =
  relevant (Exec.event c.exec a) && relevant (Exec.event c.exec b) && precedes c a b

let check_partial_order c =
  let r = Exec.length c.exec in
  let ok = ref true in
  for a = 0 to r - 1 do
    if c.reach.(a).(a) then ok := false;
    for b = 0 to r - 1 do
      if c.reach.(a).(b) then
        for d = 0 to r - 1 do
          if c.reach.(b).(d) && not c.reach.(a).(d) then ok := false
        done
    done
  done;
  !ok

let predecessors c eid =
  check_bounds c eid;
  let acc = ref [] in
  for a = Exec.length c.exec - 1 downto 0 do
    if c.reach.(a).(eid) then acc := a :: !acc
  done;
  !acc

let downset_count c ~relevant eid j =
  check_bounds c eid;
  let e = Exec.event c.exec eid in
  let count = ref 0 in
  let consider a =
    let ea = Exec.event c.exec a in
    if ea.Event.tid = j && relevant ea then incr count
  in
  List.iter consider (predecessors c eid);
  if e.Event.tid = j && relevant e then incr count;
  !count
