type kind =
  | Internal
  | Read of Types.var * Types.value
  | Write of Types.var * Types.value

type t = { eid : int; tid : Types.tid; pos : int; kind : kind }

let make ~eid ~tid ~pos kind =
  assert (eid >= 0 && tid >= 0 && pos >= 1);
  { eid; tid; pos; kind }

let internal ~eid ~tid ~pos = make ~eid ~tid ~pos Internal
let read ~eid ~tid ~pos ~var ~value = make ~eid ~tid ~pos (Read (var, value))
let write ~eid ~tid ~pos ~var ~value = make ~eid ~tid ~pos (Write (var, value))

let variable e =
  match e.kind with Internal -> None | Read (x, _) | Write (x, _) -> Some x

let written_value e = match e.kind with Write (_, v) -> Some v | Read _ | Internal -> None
let is_read e = match e.kind with Read _ -> true | Write _ | Internal -> false
let is_write e = match e.kind with Write _ -> true | Read _ | Internal -> false
let is_access e = is_read e || is_write e
let accesses e x = match variable e with Some y -> String.equal x y | None -> false
let writes e x = match e.kind with Write (y, _) -> String.equal x y | Read _ | Internal -> false
let equal a b = a = b
let compare = Stdlib.compare

let pp_kind ppf = function
  | Internal -> Format.pp_print_string ppf "internal"
  | Read (x, v) -> Format.fprintf ppf "read %a=%d" Types.pp_var x v
  | Write (x, v) -> Format.fprintf ppf "write %a=%d" Types.pp_var x v

let pp ppf e =
  Format.fprintf ppf "e%d[%a#%d %a]" e.eid Types.pp_tid e.tid e.pos pp_kind e.kind
