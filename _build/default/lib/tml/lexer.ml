type token =
  | INT of int
  | IDENT of string
  | KW_SHARED | KW_THREAD | KW_LOCAL | KW_IF | KW_ELSE | KW_WHILE
  | KW_LOCK | KW_UNLOCK | KW_SYNC | KW_WAIT | KW_NOTIFY
  | KW_SKIP | KW_NOP | KW_CHOOSE | KW_SPAWN | KW_JOIN
  | LBRACE | RBRACE | LPAREN | RPAREN | SEMI | COMMA
  | ASSIGN
  | EQ | NE | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | ANDAND | OROR | BANG
  | EOF

type pos = { line : int; col : int }

exception Error of string * pos

let keywords =
  [ ("shared", KW_SHARED); ("thread", KW_THREAD); ("local", KW_LOCAL); ("if", KW_IF);
    ("else", KW_ELSE); ("while", KW_WHILE); ("lock", KW_LOCK); ("unlock", KW_UNLOCK);
    ("sync", KW_SYNC); ("wait", KW_WAIT); ("notify", KW_NOTIFY); ("skip", KW_SKIP);
    ("nop", KW_NOP); ("choose", KW_CHOOSE); ("spawn", KW_SPAWN); ("join", KW_JOIN) ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

type cursor = { src : string; mutable off : int; mutable line : int; mutable col : int }

let peek cur = if cur.off < String.length cur.src then Some cur.src.[cur.off] else None

let peek2 cur =
  if cur.off + 1 < String.length cur.src then Some cur.src.[cur.off + 1] else None

let advance cur =
  (match peek cur with
  | Some '\n' ->
      cur.line <- cur.line + 1;
      cur.col <- 1
  | Some _ -> cur.col <- cur.col + 1
  | None -> ());
  cur.off <- cur.off + 1

let pos_of cur = { line = cur.line; col = cur.col }

let rec skip_trivia cur =
  match peek cur with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance cur;
      skip_trivia cur
  | Some '/' when peek2 cur = Some '/' ->
      let rec to_eol () =
        match peek cur with
        | Some '\n' | None -> ()
        | Some _ ->
            advance cur;
            to_eol ()
      in
      to_eol ();
      skip_trivia cur
  | Some '/' when peek2 cur = Some '*' ->
      let start = pos_of cur in
      advance cur;
      advance cur;
      let rec to_close () =
        match (peek cur, peek2 cur) with
        | Some '*', Some '/' ->
            advance cur;
            advance cur
        | Some _, _ ->
            advance cur;
            to_close ()
        | None, _ -> raise (Error ("unterminated block comment", start))
      in
      to_close ();
      skip_trivia cur
  | Some _ | None -> ()

let lex_number cur =
  let start = cur.off in
  while match peek cur with Some c -> is_digit c | None -> false do
    advance cur
  done;
  let text = String.sub cur.src start (cur.off - start) in
  match int_of_string_opt text with
  | Some n -> INT n
  | None -> raise (Error ("integer literal out of range: " ^ text, pos_of cur))

let lex_ident cur =
  let start = cur.off in
  while match peek cur with Some c -> is_ident_char c | None -> false do
    advance cur
  done;
  let text = String.sub cur.src start (cur.off - start) in
  match List.assoc_opt text keywords with Some kw -> kw | None -> IDENT text

let lex_token cur =
  let p = pos_of cur in
  let simple tok = advance cur; (tok, p) in
  let two_char tok = advance cur; advance cur; (tok, p) in
  match peek cur with
  | None -> (EOF, p)
  | Some c when is_digit c -> (lex_number cur, p)
  | Some c when is_ident_start c -> (lex_ident cur, p)
  | Some '{' -> simple LBRACE
  | Some '}' -> simple RBRACE
  | Some '(' -> simple LPAREN
  | Some ')' -> simple RPAREN
  | Some ';' -> simple SEMI
  | Some ',' -> simple COMMA
  | Some '+' -> simple PLUS
  | Some '-' -> simple MINUS
  | Some '*' -> simple STAR
  | Some '/' -> simple SLASH
  | Some '%' -> simple PERCENT
  | Some '=' -> if peek2 cur = Some '=' then two_char EQ else simple ASSIGN
  | Some '!' -> if peek2 cur = Some '=' then two_char NE else simple BANG
  | Some '<' -> if peek2 cur = Some '=' then two_char LE else simple LT
  | Some '>' -> if peek2 cur = Some '=' then two_char GE else simple GT
  | Some '&' ->
      if peek2 cur = Some '&' then two_char ANDAND
      else raise (Error ("expected '&&'", p))
  | Some '|' ->
      if peek2 cur = Some '|' then two_char OROR
      else raise (Error ("expected '||'", p))
  | Some c -> raise (Error (Printf.sprintf "unexpected character %C" c, p))

let tokenize src =
  let cur = { src; off = 0; line = 1; col = 1 } in
  let rec go acc =
    skip_trivia cur;
    let (tok, p) = lex_token cur in
    if tok = EOF then List.rev ((EOF, p) :: acc) else go ((tok, p) :: acc)
  in
  go []

let token_to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_SHARED -> "shared" | KW_THREAD -> "thread" | KW_LOCAL -> "local"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while"
  | KW_LOCK -> "lock" | KW_UNLOCK -> "unlock" | KW_SYNC -> "sync"
  | KW_WAIT -> "wait" | KW_NOTIFY -> "notify" | KW_SKIP -> "skip"
  | KW_NOP -> "nop" | KW_CHOOSE -> "choose" | KW_SPAWN -> "spawn" | KW_JOIN -> "join"
  | LBRACE -> "{" | RBRACE -> "}" | LPAREN -> "(" | RPAREN -> ")"
  | SEMI -> ";" | COMMA -> ","
  | ASSIGN -> "=" | EQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<="
  | GT -> ">" | GE -> ">="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | ANDAND -> "&&" | OROR -> "||" | BANG -> "!"
  | EOF -> "<eof>"

let pp_pos ppf (p : pos) = Format.fprintf ppf "line %d, column %d" p.line p.col
