(** The instrumentation pass (paper, Sections 1, 3.1, 4.1).

    Rewrites a compiled image so that every shared-variable access and
    every synchronization operation executes Algorithm A atomically with
    the operation itself:

    - [Load_global x]  becomes [Instr_load x]   (read event of [x]);
    - [Store_global x] becomes [Instr_store x]  (write event of [x]);
    - [Acquire l]/[Release l] become [Instr_acquire]/[Instr_release],
      each additionally a {e write} of the dummy variable
      [Types.lock_var l] — the happens-before edge between a
      synchronized-block exit and the next entry;
    - [Wait_cond c]/[Notify_cond c] become [Instr_wait]/[Instr_notify]:
      the notifier writes [Types.notify_var c] before notifying, the
      woken thread writes it after waking.

    The transformation never changes program values or control flow —
    a differential test runs both images under the same schedule and
    compares final states. *)

val instrument : Bytecode.image -> Bytecode.image
(** @raise Invalid_argument if the image is already instrumented. *)

val instrument_program : Ast.program -> Bytecode.image
(** [instrument_program p = instrument (Compile.compile p)]. *)

val sync_variables : Bytecode.image -> Trace.Types.var list
(** The dummy shared variables the instrumented image can write (lock and
    notify variables), sorted; useful for sizing observer state. *)
