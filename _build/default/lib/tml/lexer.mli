(** Hand-written lexer for TML concrete syntax.

    Supports [//] line comments and [/* ... */] block comments. Every
    token carries its source position for error reporting. *)

type token =
  | INT of int
  | IDENT of string
  | KW_SHARED | KW_THREAD | KW_LOCAL | KW_IF | KW_ELSE | KW_WHILE
  | KW_LOCK | KW_UNLOCK | KW_SYNC | KW_WAIT | KW_NOTIFY
  | KW_SKIP | KW_NOP | KW_CHOOSE | KW_SPAWN | KW_JOIN
  | LBRACE | RBRACE | LPAREN | RPAREN | SEMI | COMMA
  | ASSIGN  (** [=] *)
  | EQ | NE | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | ANDAND | OROR | BANG
  | EOF

type pos = { line : int; col : int }

exception Error of string * pos

val tokenize : string -> (token * pos) list
(** @raise Error on an unrecognized character or unterminated comment. *)

val token_to_string : token -> string
val pp_pos : Format.formatter -> pos -> unit
