open Lexer

exception Error of string * Lexer.pos

type state = { mutable toks : (token * pos) list }

let peek st = match st.toks with [] -> (EOF, { line = 0; col = 0 }) | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let fail st msg =
  let tok, p = peek st in
  raise (Error (Printf.sprintf "%s (found %S)" msg (token_to_string tok), p))

let expect st tok what =
  let found, _ = peek st in
  if found = tok then advance st else fail st ("expected " ^ what)

let expect_ident st what =
  match next st with
  | IDENT x, _ -> x
  | tok, p ->
      raise (Error (Printf.sprintf "expected %s (found %S)" what (token_to_string tok), p))

let expect_int st what =
  match next st with
  | INT n, _ -> n
  | MINUS, _ -> (
      match next st with
      | INT n, _ -> -n
      | tok, p ->
          raise
            (Error (Printf.sprintf "expected %s (found -%S)" what (token_to_string tok), p)))
  | tok, p ->
      raise (Error (Printf.sprintf "expected %s (found %S)" what (token_to_string tok), p))

(* {1 Expressions} *)

let rec parse_or st = parse_or_chain (parse_and st) st

and parse_or_chain left st =
  match peek st with
  | OROR, _ ->
      advance st;
      parse_or_chain (Ast.Binop (Ast.Or, left, parse_and st)) st
  | _ -> left

and parse_and st = parse_and_chain (parse_cmp st) st

and parse_and_chain left st =
  match peek st with
  | ANDAND, _ ->
      advance st;
      parse_and_chain (Ast.Binop (Ast.And, left, parse_cmp st)) st
  | _ -> left

and parse_cmp st =
  let left = parse_add st in
  let op =
    match peek st with
    | EQ, _ -> Some Ast.Eq
    | NE, _ -> Some Ast.Ne
    | LT, _ -> Some Ast.Lt
    | LE, _ -> Some Ast.Le
    | GT, _ -> Some Ast.Gt
    | GE, _ -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
      advance st;
      Ast.Binop (op, left, parse_add st)

and parse_add st = parse_add_chain (parse_mul st) st

and parse_add_chain left st =
  match peek st with
  | PLUS, _ ->
      advance st;
      parse_add_chain (Ast.Binop (Ast.Add, left, parse_mul st)) st
  | MINUS, _ ->
      advance st;
      parse_add_chain (Ast.Binop (Ast.Sub, left, parse_mul st)) st
  | _ -> left

and parse_mul st = parse_mul_chain (parse_unary st) st

and parse_mul_chain left st =
  let op =
    match peek st with
    | STAR, _ -> Some Ast.Mul
    | SLASH, _ -> Some Ast.Div
    | PERCENT, _ -> Some Ast.Mod
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
      advance st;
      parse_mul_chain (Ast.Binop (op, left, parse_unary st)) st

and parse_unary st =
  match peek st with
  | MINUS, _ ->
      advance st;
      (* Fold -k into a literal so printed negative constants round-trip. *)
      (match parse_unary st with
      | Ast.Int n -> Ast.Int (-n)
      | e -> Ast.Unop (Ast.Neg, e))
  | BANG, _ ->
      advance st;
      Ast.Unop (Ast.Not, parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | INT n, _ ->
      advance st;
      Ast.Int n
  | IDENT x, _ ->
      advance st;
      Ast.Var x
  | LPAREN, _ ->
      advance st;
      let e = parse_or st in
      expect st RPAREN "')'";
      e
  | KW_CHOOSE, _ ->
      advance st;
      expect st LPAREN "'(' after choose";
      let rec args acc =
        let e = parse_or st in
        match peek st with
        | COMMA, _ ->
            advance st;
            args (e :: acc)
        | _ ->
            expect st RPAREN "')' closing choose";
            List.rev (e :: acc)
      in
      Ast.Choose (args [])
  | _ -> fail st "expected expression"

let parse_expression = parse_or

(* {1 Statements} *)

let rec parse_block st =
  expect st LBRACE "'{'";
  let rec stmts acc =
    match peek st with
    | RBRACE, _ ->
        advance st;
        Ast.seq (List.rev acc)
    | EOF, _ -> fail st "unterminated block"
    | _ -> stmts (parse_statement st :: acc)
  in
  stmts []

and parse_statement st =
  match peek st with
  | KW_SKIP, _ ->
      advance st;
      expect st SEMI "';'";
      Ast.Skip
  | KW_NOP, _ ->
      advance st;
      let k = match peek st with INT n, _ -> advance st; n | _ -> 1 in
      expect st SEMI "';'";
      if k < 1 then fail st "nop count must be >= 1";
      Ast.Nop k
  | KW_LOCAL, _ ->
      advance st;
      let x = expect_ident st "local variable name" in
      expect st ASSIGN "'='";
      let e = parse_expression st in
      expect st SEMI "';'";
      Ast.Local_decl (x, e)
  | KW_IF, _ ->
      advance st;
      expect st LPAREN "'('";
      let c = parse_expression st in
      expect st RPAREN "')'";
      let then_branch = parse_block st in
      let else_branch =
        match peek st with
        | KW_ELSE, _ -> (
            advance st;
            match peek st with
            | KW_IF, _ -> parse_statement st
            | _ -> parse_block st)
        | _ -> Ast.Skip
      in
      Ast.If (c, then_branch, else_branch)
  | KW_WHILE, _ ->
      advance st;
      expect st LPAREN "'('";
      let c = parse_expression st in
      expect st RPAREN "')'";
      Ast.While (c, parse_block st)
  | KW_LOCK, _ ->
      advance st;
      let l = expect_ident st "lock name" in
      expect st SEMI "';'";
      Ast.Lock l
  | KW_UNLOCK, _ ->
      advance st;
      let l = expect_ident st "lock name" in
      expect st SEMI "';'";
      Ast.Unlock l
  | KW_SYNC, _ ->
      advance st;
      expect st LPAREN "'('";
      let l = expect_ident st "lock name" in
      expect st RPAREN "')'";
      Ast.Sync (l, parse_block st)
  | KW_WAIT, _ ->
      advance st;
      let c = expect_ident st "condition name" in
      expect st SEMI "';'";
      Ast.Wait c
  | KW_NOTIFY, _ ->
      advance st;
      let c = expect_ident st "condition name" in
      expect st SEMI "';'";
      Ast.Notify c
  | KW_SPAWN, _ ->
      advance st;
      let t = expect_ident st "thread name" in
      expect st SEMI "';'";
      Ast.Spawn t
  | KW_JOIN, _ ->
      advance st;
      let t = expect_ident st "thread name" in
      expect st SEMI "';'";
      Ast.Join t
  | IDENT x, _ ->
      advance st;
      expect st ASSIGN "'=' in assignment";
      let e = parse_expression st in
      expect st SEMI "';'";
      Ast.Assign (x, e)
  | _ -> fail st "expected statement"

(* {1 Programs} *)

let parse_shared_decls st =
  let rec sections acc =
    match peek st with
    | KW_SHARED, _ ->
        advance st;
        let rec decls acc =
          let x = expect_ident st "shared variable name" in
          expect st ASSIGN "'='";
          let v = expect_int st "initial value" in
          let acc = (x, v) :: acc in
          match peek st with
          | COMMA, _ ->
              advance st;
              decls acc
          | _ ->
              expect st SEMI "';'";
              acc
        in
        sections (decls acc)
    | _ -> List.rev acc
  in
  sections []

let parse_threads st =
  let rec go acc =
    match peek st with
    | KW_THREAD, _ ->
        advance st;
        let tname = expect_ident st "thread name" in
        let body = parse_block st in
        go (Ast.{ tname; body } :: acc)
    | EOF, _ ->
        if acc = [] then fail st "program must declare at least one thread";
        List.rev acc
    | _ -> fail st "expected 'thread' or end of input"
  in
  go []

let run_parser f src =
  let st = { toks = Lexer.tokenize src } in
  let result = f st in
  (match peek st with EOF, _ -> () | _ -> fail st "trailing input");
  result

let parse_program src =
  run_parser
    (fun st ->
      let shared = parse_shared_decls st in
      let threads = parse_threads st in
      Ast.{ shared; threads })
    src

let parse_expr src = run_parser parse_expression src

let parse_stmt src =
  run_parser
    (fun st ->
      let rec stmts acc =
        match peek st with
        | EOF, _ -> Ast.seq (List.rev acc)
        | _ -> stmts (parse_statement st :: acc)
      in
      stmts [])
    src
