let spawn_gate tname = Trace.Types.notify_var ("spawn-" ^ tname)
let join_flag tname = Trace.Types.notify_var ("join-" ^ tname)

module Sset = Set.Make (String)

let rec stmt_targets s =
  match s with
  | Ast.Spawn t -> (Sset.singleton t, Sset.empty)
  | Ast.Join t -> (Sset.empty, Sset.singleton t)
  | Ast.Seq ss ->
      List.fold_left
        (fun (sp, jn) s ->
          let sp', jn' = stmt_targets s in
          (Sset.union sp sp', Sset.union jn jn'))
        (Sset.empty, Sset.empty) ss
  | Ast.If (_, a, b) ->
      let sa, ja = stmt_targets a in
      let sb, jb = stmt_targets b in
      (Sset.union sa sb, Sset.union ja jb)
  | Ast.While (_, b) | Ast.Sync (_, b) -> stmt_targets b
  | Ast.Skip | Ast.Nop _ | Ast.Assign _ | Ast.Local_decl _ | Ast.Lock _ | Ast.Unlock _
  | Ast.Wait _ | Ast.Notify _ -> (Sset.empty, Sset.empty)

let program_targets (p : Ast.program) =
  List.fold_left
    (fun (sp, jn) (t : Ast.thread) ->
      let sp', jn' = stmt_targets t.body in
      (Sset.union sp sp', Sset.union jn jn'))
    (Sset.empty, Sset.empty) p.threads

let uses_dynamic_threads p =
  let sp, jn = program_targets p in
  not (Sset.is_empty sp && Sset.is_empty jn)

let spin_until_nonzero x =
  Ast.While (Ast.Binop (Ast.Eq, Ast.Var x, Ast.Int 0), Ast.Nop 1)

let rec rewrite_stmt s =
  match s with
  | Ast.Spawn t -> Ast.Assign (spawn_gate t, Ast.Int 1)
  | Ast.Join t -> spin_until_nonzero (join_flag t)
  | Ast.Seq ss -> Ast.seq (List.map rewrite_stmt ss)
  | Ast.If (c, a, b) -> Ast.If (c, rewrite_stmt a, rewrite_stmt b)
  | Ast.While (c, b) -> Ast.While (c, rewrite_stmt b)
  | Ast.Sync (l, b) -> Ast.Sync (l, rewrite_stmt b)
  | Ast.Skip | Ast.Nop _ | Ast.Assign _ | Ast.Local_decl _ | Ast.Lock _ | Ast.Unlock _
  | Ast.Wait _ | Ast.Notify _ -> s

let desugar (p : Ast.program) =
  let spawned, joined = program_targets p in
  if Sset.is_empty spawned && Sset.is_empty joined then p
  else begin
    let threads =
      List.map
        (fun (t : Ast.thread) ->
          let body = rewrite_stmt t.body in
          let body =
            if Sset.mem t.tname spawned then
              Ast.seq [ spin_until_nonzero (spawn_gate t.tname); body ]
            else body
          in
          let body =
            if Sset.mem t.tname joined then
              Ast.seq [ body; Ast.Assign (join_flag t.tname, Ast.Int 1) ]
            else body
          in
          { t with Ast.body })
        p.threads
    in
    let extra =
      List.map (fun t -> (spawn_gate t, 0)) (Sset.elements spawned)
      @ List.map (fun t -> (join_flag t, 0)) (Sset.elements joined)
    in
    { Ast.shared = p.shared @ extra; threads }
  end
