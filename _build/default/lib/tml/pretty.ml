open Ast

let unop_symbol = function Neg -> "-" | Not -> "!"

let binop_symbol = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"

(* Precedence levels, higher binds tighter; mirrors Parser. *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

let unary_prec = 6

let pp_unop ppf op = Format.pp_print_string ppf (unop_symbol op)
let pp_binop ppf op = Format.pp_print_string ppf (binop_symbol op)

let rec pp_expr_prec prec ppf = function
  | Int n ->
      if n < 0 && prec >= unary_prec then Format.fprintf ppf "(%d)" n
      else Format.pp_print_int ppf n
  | Var x -> Format.pp_print_string ppf x
  | Unop (op, e) ->
      let body ppf () = Format.fprintf ppf "%s%a" (unop_symbol op) (pp_expr_prec unary_prec) e in
      if prec > unary_prec then Format.fprintf ppf "(%a)" body () else body ppf ()
  | Binop (op, a, b) ->
      let p = binop_prec op in
      (* Comparison operators are non-associative in the grammar; all
         other binary operators parse left-associatively, so the right
         operand needs a strictly higher level. *)
      let left_prec = match op with Eq | Ne | Lt | Le | Gt | Ge -> p + 1 | _ -> p in
      let body ppf () =
        Format.fprintf ppf "%a %s %a" (pp_expr_prec left_prec) a (binop_symbol op)
          (pp_expr_prec (p + 1)) b
      in
      if prec > p then Format.fprintf ppf "(%a)" body () else body ppf ()
  | Choose es ->
      Format.fprintf ppf "choose(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (pp_expr_prec 0))
        es

let pp_expr ppf e = pp_expr_prec 0 ppf e

let rec pp_stmt ppf = function
  | Skip -> Format.fprintf ppf "skip;"
  | Nop 1 -> Format.fprintf ppf "nop;"
  | Nop k -> Format.fprintf ppf "nop %d;" k
  | Assign (x, e) -> Format.fprintf ppf "@[<h>%s = %a;@]" x pp_expr e
  | Local_decl (x, e) -> Format.fprintf ppf "@[<h>local %s = %a;@]" x pp_expr e
  | Seq ss ->
      Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf ss
  | If (c, a, Skip) -> Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_stmt a
  | If (c, a, b) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr c
        pp_stmt a pp_stmt b
  | While (c, b) -> Format.fprintf ppf "@[<v 2>while (%a) {@,%a@]@,}" pp_expr c pp_stmt b
  | Lock l -> Format.fprintf ppf "lock %s;" l
  | Unlock l -> Format.fprintf ppf "unlock %s;" l
  | Sync (l, b) -> Format.fprintf ppf "@[<v 2>sync (%s) {@,%a@]@,}" l pp_stmt b
  | Wait c -> Format.fprintf ppf "wait %s;" c
  | Notify c -> Format.fprintf ppf "notify %s;" c
  | Spawn t -> Format.fprintf ppf "spawn %s;" t
  | Join t -> Format.fprintf ppf "join %s;" t

let pp_shared ppf shared =
  if shared <> [] then
    Format.fprintf ppf "@[<h>shared %a;@]@,"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (x, v) -> Format.fprintf ppf "%s = %d" x v))
      shared

let pp_thread ppf { tname; body } =
  Format.fprintf ppf "@[<v 2>thread %s {@,%a@]@,}" tname pp_stmt body

let pp_program ppf { shared; threads } =
  Format.fprintf ppf "@[<v>%a%a@]" pp_shared shared
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_thread)
    threads

let expr_to_string e = Format.asprintf "%a" pp_expr e
let stmt_to_string s = Format.asprintf "%a" pp_stmt s
let program_to_string p = Format.asprintf "%a" pp_program p
