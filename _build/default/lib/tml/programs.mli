(** The paper's example programs, their observed schedules, and further
    workloads used by tests, examples and benchmarks.

    Each program is stored as concrete syntax (so every access also
    exercises the parser) together with, where the paper fixes one, the
    {!Sched.script} reproducing the {e observed} execution the paper
    analyzes. *)

(** {1 Paper examples} *)

val landing_bounded : Ast.program
(** Fig. 1's flight controller with the environment reduced to the single
    radio-off write, so that the instrumented run emits exactly the three
    relevant events of Example 1 (writes of [approved], [landing],
    [radio]) and the observer builds exactly the six-state lattice of
    Fig. 5. *)

val landing_observed : Sched.script
(** The successful execution of Example 1: approval, landing, and only
    then radio-off. *)

val landing_full : rounds:int -> Ast.program
(** Fig. 1 faithfully: the environment thread re-checks the radio up to
    [rounds] times, each check possibly flipping it off ([choose]); used
    for the detection-probability experiment (E6).
    @raise Invalid_argument if [rounds < 1]. *)

val xyz : Ast.program
(** Example 2: initially [x = -1, y = 0, z = 0]; thread 1 runs
    [x = x + 1; y = x + 1], thread 2 runs [z = x + 1; x = x + 1]. *)

val xyz_observed : Sched.script
(** The paper's observed execution, passing through states
    [(-1,0,0), (0,0,0), (0,0,1), (1,0,1), (1,1,1)] and emitting
    [e1 ⟨x=0,T1,(1,0)⟩, e2 ⟨z=1,T2,(1,1)⟩, e4 ⟨x=1,T2,(1,2)⟩,
    e3 ⟨y=1,T1,(2,0)⟩]. *)

(** {1 Further workloads} *)

val racy_counter : increments:int -> Ast.program
(** Two threads each performing [increments] unprotected
    read-modify-write increments of a shared counter — the classic lost
    update, and a data race on every access pair. *)

val locked_counter : increments:int -> Ast.program
(** The same counter protected by a lock; no race, no lost update. *)

val producer_consumer : items:int -> Ast.program
(** One producer, one consumer over a one-slot buffer synchronized with
    [wait]/[notify]. *)

val bank_transfer : Ast.program
(** Two transfers locking two accounts in opposite orders — may
    deadlock; the lock-order graph has a cycle. *)

val bank_transfer_ordered : Ast.program
(** Same transfers, locks always taken in the same order — deadlock
    free. *)

val peterson : Ast.program
(** Peterson's mutual-exclusion protocol guarding a critical increment;
    correct under sequential consistency. *)

val dekker_sketch : Ast.program
(** The naive flag-based mutual exclusion (first attempt at Dekker's
    algorithm) — both threads can enter the critical section; its racy
    increment is predictably lost. *)

val fork_join : workers:int -> Ast.program
(** A master thread that spawns [workers] dormant workers, each squaring
    its input into its own cell, then joins them all and totals the
    results — the classic fork/join pattern over {!Desugar}'s dynamic
    threads. Deterministic: the total is independent of scheduling.
    @raise Invalid_argument if [workers < 1]. *)

val spawn_unsynchronized : Ast.program
(** A master that spawns a worker and then races with it on a shared
    cell — dynamic creation does not order the {e subsequent} accesses,
    so the race detector must still fire. *)

val philosophers : n:int -> Ast.program
(** [n] dining philosophers, each locking fork [i] then fork
    [(i+1) mod n]: the lock-order graph has the classic [n]-cycle and
    some schedule deadlocks.
    @raise Invalid_argument if [n < 2]. *)

val pipeline : stages:int -> Ast.program
(** [stages] threads forwarding a value through a chain of shared cells;
    long causal chains with no concurrency between adjacent writes. *)

val independent : threads:int -> writes:int -> Ast.program
(** Fully independent threads writing disjoint variables — the lattice
    is a full grid, worst case for level width.
    @raise Invalid_argument if [threads < 1] or [writes < 1]. *)

val all_named : unit -> (string * Ast.program) list
(** Every fixed-size program above with a stable name, for integration
    tests and the CLI's [--example] option. *)

val source_of_name : string -> string option
(** Concrete syntax for a named program, if known. *)
