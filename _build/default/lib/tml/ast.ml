type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And
  | Or

type expr =
  | Int of int
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Choose of expr list

type stmt =
  | Skip
  | Nop of int
  | Assign of string * expr
  | Local_decl of string * expr
  | Seq of stmt list
  | If of expr * stmt * stmt
  | While of expr * stmt
  | Lock of string
  | Unlock of string
  | Sync of string * stmt
  | Wait of string
  | Notify of string
  | Spawn of string
  | Join of string

type thread = { tname : string; body : stmt }
type program = { shared : (string * int) list; threads : thread list }

let seq stmts =
  let rec flatten s acc =
    match s with
    | Skip -> acc
    | Seq ss -> List.fold_right flatten ss acc
    | s -> s :: acc
  in
  match List.fold_right flatten stmts [] with
  | [] -> Skip
  | [ s ] -> s
  | ss -> Seq ss

let program ~shared ~threads =
  { shared; threads = List.map (fun (tname, body) -> { tname; body }) threads }

module Sset = Set.Make (String)

let rec expr_vars_set = function
  | Int _ -> Sset.empty
  | Var x -> Sset.singleton x
  | Unop (_, e) -> expr_vars_set e
  | Binop (_, a, b) -> Sset.union (expr_vars_set a) (expr_vars_set b)
  | Choose es -> List.fold_left (fun s e -> Sset.union s (expr_vars_set e)) Sset.empty es

let expr_vars e = Sset.elements (expr_vars_set e)

let rec stmt_vars_set = function
  | Skip | Nop _ | Lock _ | Unlock _ | Wait _ | Notify _ | Spawn _ | Join _ ->
      Sset.empty
  | Assign (x, e) | Local_decl (x, e) -> Sset.add x (expr_vars_set e)
  | Seq ss -> List.fold_left (fun s st -> Sset.union s (stmt_vars_set st)) Sset.empty ss
  | If (c, a, b) ->
      Sset.union (expr_vars_set c) (Sset.union (stmt_vars_set a) (stmt_vars_set b))
  | While (c, b) -> Sset.union (expr_vars_set c) (stmt_vars_set b)
  | Sync (_, s) -> stmt_vars_set s

let stmt_vars s = Sset.elements (stmt_vars_set s)

let rec stmt_size = function
  | Skip | Nop _ | Assign _ | Local_decl _ | Lock _ | Unlock _ | Wait _ | Notify _
  | Spawn _ | Join _ -> 1
  | Seq ss -> List.fold_left (fun n s -> n + stmt_size s) 1 ss
  | If (_, a, b) -> 1 + stmt_size a + stmt_size b
  | While (_, b) | Sync (_, b) -> 1 + stmt_size b

let equal_expr (a : expr) (b : expr) = a = b
let equal_stmt (a : stmt) (b : stmt) = a = b
let equal_program (a : program) (b : program) = a = b
