lib/tml/ast.mli:
