lib/tml/explore.ml: Hashtbl Instrument List Option Sched Vm
