lib/tml/desugar.mli: Ast Trace
