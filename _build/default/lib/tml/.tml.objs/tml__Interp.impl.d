lib/tml/interp.ml: Array Ast Desugar Hashtbl List Mvc Printf Sched String Trace Typecheck Types Vm
