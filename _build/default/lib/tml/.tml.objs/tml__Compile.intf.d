lib/tml/compile.mli: Ast Bytecode
