lib/tml/bytecode.mli: Ast Format Trace Types
