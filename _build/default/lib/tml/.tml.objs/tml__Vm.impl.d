lib/tml/vm.ml: Array Ast Bytecode Exec Format Hashtbl Instrument List Message Mvc Printf Sched String Trace Types
