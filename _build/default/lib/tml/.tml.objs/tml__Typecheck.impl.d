lib/tml/typecheck.ml: Ast Format List Set String
