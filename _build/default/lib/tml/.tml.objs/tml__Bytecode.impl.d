lib/tml/bytecode.ml: Array Ast Format List Pretty String Trace Types
