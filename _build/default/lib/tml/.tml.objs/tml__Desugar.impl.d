lib/tml/desugar.ml: Ast List Set String Trace
