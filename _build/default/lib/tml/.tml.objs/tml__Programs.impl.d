lib/tml/programs.ml: Buffer List Parser Printf Sched
