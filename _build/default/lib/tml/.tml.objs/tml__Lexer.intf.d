lib/tml/lexer.mli: Format
