lib/tml/parser.ml: Ast Lexer List Printf
