lib/tml/explore.mli: Ast Bytecode Sched Vm
