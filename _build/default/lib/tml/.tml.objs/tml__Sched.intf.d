lib/tml/sched.mli: Format Trace Types
