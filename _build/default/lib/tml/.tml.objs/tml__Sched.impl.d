lib/tml/sched.ml: Format List Printf Random Trace Types
