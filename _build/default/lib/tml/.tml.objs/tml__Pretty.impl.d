lib/tml/pretty.ml: Ast Format
