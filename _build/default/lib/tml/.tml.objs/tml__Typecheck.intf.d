lib/tml/typecheck.mli: Ast Format
