lib/tml/instrument.ml: Array Bytecode Compile Set String Trace
