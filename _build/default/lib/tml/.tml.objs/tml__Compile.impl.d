lib/tml/compile.ml: Array Ast Bytecode Desugar Hashtbl List Parser Set String Typecheck
