lib/tml/lexer.ml: Format List Printf String
