lib/tml/instrument.mli: Ast Bytecode Trace
