lib/tml/programs.mli: Ast Sched
