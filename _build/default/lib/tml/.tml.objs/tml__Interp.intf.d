lib/tml/interp.mli: Ast Message Mvc Sched Trace Types Vm
