lib/tml/parser.mli: Ast Lexer
