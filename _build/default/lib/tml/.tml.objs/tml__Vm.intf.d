lib/tml/vm.mli: Ast Bytecode Exec Format Message Mvc Sched Trace Types
