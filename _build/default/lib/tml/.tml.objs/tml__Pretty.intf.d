lib/tml/pretty.mli: Ast Format
