lib/tml/ast.ml: List Set String
