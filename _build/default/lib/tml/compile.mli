(** Compiler from TML abstract syntax to {!Bytecode}.

    Expressions are compiled left-to-right; [&&]/[||] short-circuit via
    jumps and always leave 0 or 1 on the stack; [sync (m) { s }] becomes
    [Acquire m; s; Release m]. The result is un-instrumented; pass it to
    {!Instrument.instrument} to obtain the image the monitored run uses. *)

val compile : Ast.program -> Bytecode.image
(** @raise Invalid_argument if the program fails {!Typecheck.check}. *)

val compile_string : string -> Bytecode.image
(** Parse then compile.
    @raise Parser.Error on syntax errors. *)
