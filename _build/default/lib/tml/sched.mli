(** Schedulers: the source of all nondeterminism in a TML run.

    A scheduler makes two kinds of decisions: which runnable thread takes
    the next observable step ({!pick}), and which branch a [choose(...)]
    expression takes ({!choose}). Recording a run's decisions yields a
    {!script} that replays it exactly — the mechanism behind differential
    tests (VM vs reference interpreter) and exhaustive exploration. *)

open Trace

type decision = Pick of Types.tid | Choice of int
type script = decision list

type t

val name : t -> string

val pick : t -> runnable:Types.tid list -> Types.tid
(** Selects a thread among [runnable] (nonempty, ascending).
    @raise Invalid_argument if [runnable] is empty.
    @raise Replay_mismatch for a script scheduler whose next decision is
    not a pick of a runnable thread. *)

val choose : t -> int -> int
(** [choose t k] selects a branch in [\[0, k)].
    @raise Invalid_argument if [k <= 0]. *)

exception Replay_mismatch of string

(** {1 Strategies} *)

val round_robin : unit -> t
(** Cycles through thread ids; [choose] always takes branch 0. *)

val random : seed:int -> t
(** Uniform among runnable threads and branches, deterministic in
    [seed]. *)

val random_biased : seed:int -> stickiness:int -> t
(** Like {!random} but keeps running the same thread with odds
    [stickiness : 1], producing long thread bursts — schedules under
    which interleaving bugs hide, as with a real JVM scheduler.
    @raise Invalid_argument if [stickiness < 0]. *)

val of_script : script -> t
(** Replays decisions in order.
    @raise Replay_mismatch (at use time) when the script disagrees with
    the run or is exhausted. *)

val make_raw :
  name:string ->
  pick_fn:(Types.tid list -> Types.tid) ->
  choose_fn:(int -> int) ->
  t
(** Escape hatch for custom strategies (used by {!Explore}'s probing
    scheduler). [pick_fn] receives the nonempty runnable list and must
    return one of its elements; [choose_fn k] must return a value in
    [\[0, k)] — both are enforced with assertions at use sites. *)

val recording : t -> t * (unit -> script)
(** [recording inner] behaves as [inner] and additionally records every
    decision; the callback returns the script so far (in order). *)

val pp_decision : Format.formatter -> decision -> unit
val pp_script : Format.formatter -> script -> unit
