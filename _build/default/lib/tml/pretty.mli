(** Pretty-printer for TML, producing concrete syntax that {!Parser}
    accepts ([Parser.parse_program (Pretty.program_to_string p)] equals
    [p] up to [Seq]/[Skip] normalization — a property the test suite
    checks). *)

val pp_unop : Format.formatter -> Ast.unop -> unit
val pp_binop : Format.formatter -> Ast.binop -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
(** Parenthesizes minimally according to the parser's precedences. *)

val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val program_to_string : Ast.program -> string
