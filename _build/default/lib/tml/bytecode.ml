open Trace

type instr =
  | Push of int
  | Pop
  | Load_local of int
  | Store_local of int
  | Prim of Ast.binop
  | Prim1 of Ast.unop
  | Jump of int
  | Jump_if_zero of int
  | Jump_if_nonzero of int
  | Choose_jump of int list
  | Load_global of Types.var
  | Store_global of Types.var
  | Internal
  | Acquire of string
  | Release of string
  | Wait_cond of string
  | Notify_cond of string
  | Instr_load of Types.var
  | Instr_store of Types.var
  | Instr_acquire of string
  | Instr_release of string
  | Instr_wait of string
  | Instr_notify of string
  | Halt

type image = {
  thread_names : string array;
  code : instr array array;
  nlocals : int array;
  shared_init : (Types.var * Types.value) list;
  instrumented : bool;
}

let nthreads image = Array.length image.code

let is_silent = function
  | Push _ | Pop | Load_local _ | Store_local _ | Prim _ | Prim1 _ | Jump _
  | Jump_if_zero _ | Jump_if_nonzero _ | Choose_jump _ -> true
  | Load_global _ | Store_global _ | Internal | Acquire _ | Release _ | Wait_cond _
  | Notify_cond _ | Instr_load _ | Instr_store _ | Instr_acquire _ | Instr_release _
  | Instr_wait _ | Instr_notify _ | Halt -> false

let is_observable i = not (is_silent i)

let is_instrumented_op = function
  | Instr_load _ | Instr_store _ | Instr_acquire _ | Instr_release _ | Instr_wait _
  | Instr_notify _ -> true
  | _ -> false

let is_plain_observable_op = function
  | Load_global _ | Store_global _ | Acquire _ | Release _ | Wait_cond _
  | Notify_cond _ -> true
  | _ -> false

let instr_count image = Array.fold_left (fun n c -> n + Array.length c) 0 image.code

let validate image =
  let problems = ref [] in
  let problem fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let n = nthreads image in
  if Array.length image.thread_names <> n then problem "thread_names length mismatch";
  if Array.length image.nlocals <> n then problem "nlocals length mismatch";
  Array.iteri
    (fun t code ->
      let len = Array.length code in
      if len = 0 || code.(len - 1) <> Halt then problem "thread %d: code not Halt-terminated" t;
      Array.iteri
        (fun pc instr ->
          let check_target target =
            if target < 0 || target >= len then
              problem "thread %d: pc %d jumps out of range (%d)" t pc target
          in
          (match instr with
          | Jump k | Jump_if_zero k | Jump_if_nonzero k -> check_target k
          | Choose_jump ks ->
              if ks = [] then problem "thread %d: pc %d empty choose" t pc;
              List.iter check_target ks
          | Load_local i | Store_local i ->
              if i < 0 || (t < Array.length image.nlocals && i >= image.nlocals.(t)) then
                problem "thread %d: pc %d local slot %d out of range" t pc i
          | _ -> ());
          if is_instrumented_op instr && not image.instrumented then
            problem "thread %d: pc %d instrumented opcode in plain image" t pc;
          if is_plain_observable_op instr && image.instrumented then
            problem "thread %d: pc %d un-instrumented opcode in instrumented image" t pc)
        code)
    image.code;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " (List.rev ps))

let pp_instr ppf = function
  | Push n -> Format.fprintf ppf "push %d" n
  | Pop -> Format.pp_print_string ppf "pop"
  | Load_local i -> Format.fprintf ppf "loadl %d" i
  | Store_local i -> Format.fprintf ppf "storel %d" i
  | Prim op -> Format.fprintf ppf "prim %a" Pretty.pp_binop op
  | Prim1 op -> Format.fprintf ppf "prim1 %a" Pretty.pp_unop op
  | Jump k -> Format.fprintf ppf "jmp %d" k
  | Jump_if_zero k -> Format.fprintf ppf "jz %d" k
  | Jump_if_nonzero k -> Format.fprintf ppf "jnz %d" k
  | Choose_jump ks ->
      Format.fprintf ppf "choose [%s]" (String.concat ";" (List.map string_of_int ks))
  | Load_global x -> Format.fprintf ppf "loadg %s" x
  | Store_global x -> Format.fprintf ppf "storeg %s" x
  | Internal -> Format.pp_print_string ppf "internal"
  | Acquire l -> Format.fprintf ppf "acquire %s" l
  | Release l -> Format.fprintf ppf "release %s" l
  | Wait_cond c -> Format.fprintf ppf "wait %s" c
  | Notify_cond c -> Format.fprintf ppf "notify %s" c
  | Instr_load x -> Format.fprintf ppf "loadg! %s" x
  | Instr_store x -> Format.fprintf ppf "storeg! %s" x
  | Instr_acquire l -> Format.fprintf ppf "acquire! %s" l
  | Instr_release l -> Format.fprintf ppf "release! %s" l
  | Instr_wait c -> Format.fprintf ppf "wait! %s" c
  | Instr_notify c -> Format.fprintf ppf "notify! %s" c
  | Halt -> Format.pp_print_string ppf "halt"

let pp_image ppf image =
  Format.fprintf ppf "@[<v>image (%d threads%s)@,"
    (nthreads image)
    (if image.instrumented then ", instrumented" else "");
  Array.iteri
    (fun t code ->
      Format.fprintf ppf "thread %s (%d locals):@," image.thread_names.(t) image.nlocals.(t);
      Array.iteri (fun pc i -> Format.fprintf ppf "  %3d: %a@," pc pp_instr i) code)
    image.code;
  Format.fprintf ppf "@]"
