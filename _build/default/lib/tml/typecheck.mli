(** Static well-formedness checks for TML programs.

    Checks, per program: no duplicate shared declarations, no duplicate
    thread names, at least one thread; per thread: every variable is
    either a declared shared variable or a previously declared local,
    locals are not redeclared and do not shadow shared variables, and
    [choose]/[nop] arities are positive. Lock and condition names live in
    their own namespaces and need no declaration. *)

type error = { thread : string option; message : string }

val check : Ast.program -> (unit, error list) result
(** All errors, not just the first. *)

val check_exn : Ast.program -> unit
(** @raise Invalid_argument with a rendered error list. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val shared_vars : Ast.program -> string list
(** Declared shared variables, in declaration order. *)

val locals_of_thread : Ast.thread -> string list
(** Locals declared anywhere in the thread body, in declaration order
    (meaningful only for well-formed threads). *)
