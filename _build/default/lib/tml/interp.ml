open Trace

(* Work items of the small-step machine. The work stack is refined lazily
   so that the classification of the next observable action matches the
   bytecode VM instruction by instruction. *)
type frame =
  | F_stmt of Ast.stmt
  | F_eval of Ast.expr
  | F_assign of string  (* pop one value, store to local or shared *)
  | F_if of Ast.stmt * Ast.stmt  (* pop condition *)
  | F_while of Ast.expr * Ast.stmt  (* pop condition *)
  | F_and_rhs of Ast.expr  (* pop left operand of && *)
  | F_or_rhs of Ast.expr
  | F_normalize  (* pop v, push (v <> 0) as 0/1 *)
  | F_binop of Ast.binop
  | F_unop of Ast.unop
  | F_internal
  | F_acquire of string
  | F_release of string
  | F_wait of string
  | F_notify of string

type status = Ready | Waiting of string | Waking of string | Halted

type thread_state = {
  mutable work : frame list;
  mutable values : Types.value list;
  locals : (string, Types.value) Hashtbl.t;
  mutable status : status;
}

type t = {
  program : Ast.program;
  sched : Sched.t;
  shared : (Types.var, unit) Hashtbl.t;  (* membership: is this name shared? *)
  globals : (Types.var, Types.value) Hashtbl.t;
  locks : (string, Types.tid * int) Hashtbl.t;
  threads : thread_state array;
  emitter : Mvc.Emitter.t option;
  instrumented : bool;
  mutable steps : int;
  mutable error : (Types.tid * string) option;
}

exception Interp_error of Types.tid * string

let silent_cap = 10_000_000

let is_shared t x = Hashtbl.mem t.shared x

(* A frame is observable when processing it produces exactly one event or
   synchronization action; settle stops with such a frame on top. *)
let frame_observable t = function
  | F_eval (Ast.Var x) -> is_shared t x
  | F_assign x -> is_shared t x
  | F_internal | F_acquire _ | F_release _ | F_wait _ | F_notify _ -> true
  | F_stmt _ | F_eval _ | F_if _ | F_while _ | F_and_rhs _ | F_or_rhs _ | F_normalize
  | F_binop _ | F_unop _ -> false

let pop_value tid ts =
  match ts.values with
  | v :: rest ->
      ts.values <- rest;
      v
  | [] -> raise (Interp_error (tid, "value stack underflow"))

let push_value ts v = ts.values <- v :: ts.values

(* Expands one silent frame; mirrors one silent bytecode region. *)
let exec_silent t tid ts frame =
  let push_work fs = ts.work <- fs @ ts.work in
  match frame with
  | F_stmt s -> (
      match s with
      | Ast.Skip -> ()
      | Ast.Nop k -> push_work (List.init k (fun _ -> F_internal))
      | Ast.Assign (x, e) -> push_work [ F_eval e; F_assign x ]
      | Ast.Local_decl (x, e) -> push_work [ F_eval e; F_assign x ]
      | Ast.Seq ss -> push_work (List.map (fun s -> F_stmt s) ss)
      | Ast.If (c, a, b) -> push_work [ F_eval c; F_if (a, b) ]
      | Ast.While (c, body) -> push_work [ F_eval c; F_while (c, body) ]
      | Ast.Lock l -> push_work [ F_acquire l ]
      | Ast.Unlock l -> push_work [ F_release l ]
      | Ast.Sync (l, body) -> push_work [ F_acquire l; F_stmt body; F_release l ]
      | Ast.Wait c -> push_work [ F_wait c ]
      | Ast.Notify c -> push_work [ F_notify c ]
      | Ast.Spawn _ | Ast.Join _ -> assert false (* removed by Desugar *))
  | F_eval e -> (
      match e with
      | Ast.Int n -> push_value ts n
      | Ast.Var x ->
          (* Shared reads are observable and handled in [step]. *)
          assert (not (is_shared t x));
          push_value ts (try Hashtbl.find ts.locals x with Not_found -> 0)
      | Ast.Unop (op, e) -> push_work [ F_eval e; F_unop op ]
      | Ast.Binop (Ast.And, a, b) -> push_work [ F_eval a; F_and_rhs b ]
      | Ast.Binop (Ast.Or, a, b) -> push_work [ F_eval a; F_or_rhs b ]
      | Ast.Binop (op, a, b) -> push_work [ F_eval a; F_eval b; F_binop op ]
      | Ast.Choose es ->
          let c = Sched.choose t.sched (List.length es) in
          push_work [ F_eval (List.nth es c) ])
  | F_assign x ->
      assert (not (is_shared t x));
      Hashtbl.replace ts.locals x (pop_value tid ts)
  | F_if (a, b) ->
      let c = pop_value tid ts in
      ts.work <- F_stmt (if c <> 0 then a else b) :: ts.work
  | F_while (c, body) ->
      let v = pop_value tid ts in
      if v <> 0 then push_work [ F_stmt body; F_eval c; F_while (c, body) ]
  | F_and_rhs b ->
      let va = pop_value tid ts in
      if va = 0 then push_value ts 0 else push_work [ F_eval b; F_normalize ]
  | F_or_rhs b ->
      let va = pop_value tid ts in
      if va <> 0 then push_value ts 1 else push_work [ F_eval b; F_normalize ]
  | F_normalize ->
      let v = pop_value tid ts in
      push_value ts (if v <> 0 then 1 else 0)
  | F_binop op ->
      let b = pop_value tid ts in
      let a = pop_value tid ts in
      let r =
        try Vm.apply_binop tid op a b
        with Vm.Vm_error (tid, msg) -> raise (Interp_error (tid, msg))
      in
      push_value ts r
  | F_unop op ->
      let a = pop_value tid ts in
      push_value ts (match op with Ast.Neg -> -a | Ast.Not -> if a = 0 then 1 else 0)
  | F_internal | F_acquire _ | F_release _ | F_wait _ | F_notify _ -> assert false

let settle t tid =
  let ts = t.threads.(tid) in
  let budget = ref silent_cap in
  let continue = ref true in
  while !continue do
    match ts.work with
    | [] ->
        ts.status <- Halted;
        continue := false
    | frame :: rest ->
        if frame_observable t frame then begin
          (match frame with
          | F_wait c -> ts.status <- Waiting c
          | _ -> ());
          continue := false
        end
        else begin
          decr budget;
          if !budget < 0 then
            raise (Interp_error (tid, "silent instruction budget exceeded"));
          ts.work <- rest;
          exec_silent t tid ts frame
        end
  done

let create ?(relevance = Mvc.Relevance.all_writes) ?sink ~sched ~instrumented program =
  Typecheck.check_exn program;
  let program = Desugar.desugar program in
  let shared = Hashtbl.create 16 in
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (x, v) ->
      Hashtbl.replace shared x ();
      Hashtbl.replace globals x v)
    program.Ast.shared;
  let emitter =
    if instrumented then
      Some
        (Mvc.Emitter.create ~nthreads:(List.length program.Ast.threads)
           ~init:program.Ast.shared ~relevance ?sink ())
    else None
  in
  let threads =
    Array.of_list
      (List.map
         (fun (th : Ast.thread) ->
           { work = [ F_stmt th.body ]; values = []; locals = Hashtbl.create 8;
             status = Ready })
         program.Ast.threads)
  in
  let t = { program; sched; shared; globals; locks = Hashtbl.create 8; threads;
            emitter; instrumented; steps = 0; error = None } in
  (try Array.iteri (fun tid _ -> settle t tid) threads
   with Interp_error (tid, message) -> t.error <- Some (tid, message));
  t

let read_global t x = match Hashtbl.find_opt t.globals x with Some v -> v | None -> 0
let global_value = read_global

let lock_free_or_mine t tid l =
  match Hashtbl.find_opt t.locks l with None -> true | Some (owner, _) -> owner = tid

let thread_runnable t tid =
  let ts = t.threads.(tid) in
  match ts.status with
  | Halted | Waiting _ -> false
  | Waking _ -> true
  | Ready -> (
      match ts.work with
      | F_acquire l :: _ -> lock_free_or_mine t tid l
      | _ -> true)

let runnable t =
  if t.error <> None then []
  else
    Array.to_list (Array.mapi (fun tid _ -> tid) t.threads)
    |> List.filter (thread_runnable t)

let finished t =
  match t.error with
  | Some (tid, message) -> Some (Vm.Runtime_error { tid; message })
  | None ->
      if runnable t <> [] then None
      else if Array.for_all (fun ts -> ts.status = Halted) t.threads then
        Some Vm.Completed
      else
        Some
          (Vm.Deadlocked
             (Array.to_list (Array.mapi (fun tid ts -> (tid, ts)) t.threads)
             |> List.filter (fun (_, ts) -> ts.status <> Halted)
             |> List.map fst))

let emit_internal t tid =
  match t.emitter with Some e -> Mvc.Emitter.on_internal e tid | None -> ()

let emit_read t tid x v =
  match t.emitter with Some e -> Mvc.Emitter.on_read e tid x v | None -> ()

let emit_write t tid x v =
  match t.emitter with Some e -> Mvc.Emitter.on_write e tid x v | None -> ()

let step t tid =
  if not (List.mem tid (runnable t)) then
    invalid_arg (Printf.sprintf "Interp.step: thread %d is not runnable" tid);
  let ts = t.threads.(tid) in
  t.steps <- t.steps + 1;
  let pop_work () =
    match ts.work with
    | f :: rest ->
        ts.work <- rest;
        f
    | [] -> assert false
  in
  try
    (match ts.status with
    | Waking c ->
        (match pop_work () with
        | F_wait _ -> if t.instrumented then emit_write t tid (Types.notify_var c) 1
        | _ -> assert false);
        ts.status <- Ready
    | Ready -> (
        match pop_work () with
        | F_eval (Ast.Var x) ->
            let v = read_global t x in
            push_value ts v;
            if t.instrumented then emit_read t tid x v
        | F_assign x ->
            let v = pop_value tid ts in
            Hashtbl.replace t.globals x v;
            if t.instrumented then emit_write t tid x v
        | F_internal -> emit_internal t tid
        | F_acquire l ->
            (match Hashtbl.find_opt t.locks l with
            | None -> Hashtbl.replace t.locks l (tid, 1)
            | Some (owner, count) ->
                assert (owner = tid);
                Hashtbl.replace t.locks l (tid, count + 1));
            if t.instrumented then emit_write t tid (Types.lock_var l) 1
        | F_release l ->
            (match Hashtbl.find_opt t.locks l with
            | Some (owner, count) when owner = tid ->
                if count = 1 then Hashtbl.remove t.locks l
                else Hashtbl.replace t.locks l (tid, count - 1);
                if t.instrumented then emit_write t tid (Types.lock_var l) 0
            | Some _ | None ->
                raise (Interp_error (tid, "release of a lock not held: " ^ l)))
        | F_notify c ->
            if t.instrumented then emit_write t tid (Types.notify_var c) 1;
            Array.iter
              (fun ts' ->
                match ts'.status with
                | Waiting c' when c' = c -> ts'.status <- Waking c
                | _ -> ())
              t.threads
        | F_wait _ -> assert false (* settling marks Waiting *)
        | _ -> assert false)
    | Waiting _ | Halted -> assert false);
    settle t tid
  with Interp_error (tid, message) -> t.error <- Some (tid, message)

let final_shared t =
  Hashtbl.fold (fun x v acc -> (x, v) :: acc) t.globals []
  |> List.filter (fun (x, _) -> Types.is_data_var x)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let result t : Vm.run_result =
  let outcome = match finished t with Some o -> o | None -> Vm.Fuel_exhausted in
  let exec, messages =
    match t.emitter with
    | Some e ->
        let exec, messages = Mvc.Emitter.finish e in
        (Some exec, messages)
    | None -> (None, [])
  in
  { outcome; exec; messages; final = final_shared t; steps = t.steps }

let run ?(fuel = 100_000) t =
  let rec loop () =
    match finished t with
    | Some _ -> ()
    | None ->
        if t.steps >= fuel then ()
        else begin
          let tid = Sched.pick t.sched ~runnable:(runnable t) in
          step t tid;
          loop ()
        end
  in
  loop ();
  result t

let run_program ?fuel ?relevance ~sched program =
  run ?fuel (create ?relevance ~sched ~instrumented:true program)
