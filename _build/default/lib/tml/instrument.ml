open Bytecode

let instrument_instr = function
  | Load_global x -> Instr_load x
  | Store_global x -> Instr_store x
  | Acquire l -> Instr_acquire l
  | Release l -> Instr_release l
  | Wait_cond c -> Instr_wait c
  | Notify_cond c -> Instr_notify c
  | i -> i

let instrument image =
  if image.instrumented then invalid_arg "Instrument: image already instrumented";
  let code = Array.map (Array.map instrument_instr) image.code in
  let instrumented = { image with code; instrumented = true } in
  (match validate instrumented with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Instrument: produced invalid image: " ^ msg));
  instrumented

let instrument_program p = instrument (Compile.compile p)

let sync_variables image =
  let module Sset = Set.Make (String) in
  let add acc = function
    | Acquire l | Release l | Instr_acquire l | Instr_release l ->
        Sset.add (Trace.Types.lock_var l) acc
    | Wait_cond c | Notify_cond c | Instr_wait c | Instr_notify c ->
        Sset.add (Trace.Types.notify_var c) acc
    | _ -> acc
  in
  Array.fold_left (Array.fold_left add) Sset.empty image.code |> Sset.elements
