(** Reference interpreter: a direct small-step semantics of TML at the
    AST level, independent of {!Compile} and {!Vm}.

    It implements exactly the same observable semantics as the bytecode
    machine — same events, in the same order, under the same scheduler
    decisions — so replaying a recorded {!Sched.script} through both and
    comparing executions, messages and final states is a differential
    test of the compiler, the instrumentation pass and the VM. *)

open Trace

type t

val create :
  ?relevance:Mvc.Relevance.t ->
  ?sink:(Message.t -> unit) ->
  sched:Sched.t ->
  instrumented:bool ->
  Ast.program ->
  t
(** @raise Invalid_argument if the program fails {!Typecheck.check}. *)

val runnable : t -> Types.tid list
val finished : t -> Vm.outcome option
val step : t -> Types.tid -> unit
val global_value : t -> Types.var -> Types.value

val run : ?fuel:int -> t -> Vm.run_result
(** Same result type as the VM for direct comparison. *)

val run_program :
  ?fuel:int ->
  ?relevance:Mvc.Relevance.t ->
  sched:Sched.t ->
  Ast.program ->
  Vm.run_result
(** Instrumented run, mirroring {!Vm.run_program}. *)
