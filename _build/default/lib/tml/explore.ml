type exploration = {
  runs : (Sched.script * Vm.run_result) list;
  complete : bool;
}

(* Raised by the probing scheduler when the replayed prefix is exhausted
   and a new decision is needed; carries every alternative. *)
exception Frontier of Sched.decision list

let probing_sched prefix =
  let remaining = ref prefix in
  let next () =
    match !remaining with
    | [] -> None
    | d :: rest ->
        remaining := rest;
        Some d
  in
  let pick_fn runnable =
    match next () with
    | Some (Sched.Pick tid) ->
        if List.mem tid runnable then tid
        else raise (Sched.Replay_mismatch "explore: pick not runnable")
    | Some (Sched.Choice _) -> raise (Sched.Replay_mismatch "explore: pick expected")
    | None -> raise (Frontier (List.map (fun tid -> Sched.Pick tid) runnable))
  in
  let choose_fn k =
    match next () with
    | Some (Sched.Choice c) ->
        if c >= 0 && c < k then c
        else raise (Sched.Replay_mismatch "explore: choice out of range")
    | Some (Sched.Pick _) -> raise (Sched.Replay_mismatch "explore: choice expected")
    | None -> raise (Frontier (List.init k (fun c -> Sched.Choice c)))
  in
  Sched.make_raw ~name:"probe" ~pick_fn ~choose_fn

let explore ?(max_runs = 10_000) ~run () =
  let results = ref [] in
  let n_runs = ref 0 in
  let truncated = ref false in
  (* DFS stack of script prefixes still to try. *)
  let stack = ref [ [] ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
        stack := rest;
        if !n_runs >= max_runs then truncated := true
        else begin
          match run ~sched:(probing_sched prefix) with
          | result ->
              incr n_runs;
              results := (prefix, result) :: !results
          | exception Frontier alternatives ->
              (* Push in reverse so alternatives explore in order. *)
              List.iter
                (fun d -> stack := (prefix @ [ d ]) :: !stack)
                (List.rev alternatives)
        end
  done;
  { runs = List.rev !results; complete = not !truncated }

let all_runs ?max_runs ?fuel image =
  explore ?max_runs ~run:(fun ~sched -> Vm.run_image ?fuel ~sched image) ()

let all_program_runs ?max_runs ?fuel program =
  let image = Instrument.instrument_program program in
  all_runs ?max_runs ?fuel image

let count_outcomes { runs; _ } =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun (_, r) ->
      let k = r.Vm.outcome in
      Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
    runs;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tally []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
