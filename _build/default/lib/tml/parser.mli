(** Recursive-descent parser for TML concrete syntax.

    Grammar (EBNF; [*] repetition, [?] option):
    {v
    program   ::= shared* thread+
    shared    ::= "shared" decl ("," decl)* ";"
    decl      ::= ident "=" "-"? int
    thread    ::= "thread" ident block
    block     ::= "{" stmt* "}"
    stmt      ::= "skip" ";" | "nop" int? ";"
                | ident "=" expr ";" | "local" ident "=" expr ";"
                | "if" "(" expr ")" block ("else" (block | if-stmt))?
                | "while" "(" expr ")" block
                | "lock" ident ";" | "unlock" ident ";"
                | "sync" "(" ident ")" block
                | "wait" ident ";" | "notify" ident ";"
    expr      ::= or
    or        ::= and ("||" and)*
    and       ::= cmp ("&&" cmp)*
    cmp       ::= add (("=="|"!="|"<"|"<="|">"|">=") add)?
    add       ::= mul (("+"|"-") mul)*
    mul       ::= unary (("*"|"/"|"%") unary)*
    unary     ::= ("-"|"!") unary | atom
    atom      ::= int | ident | "(" expr ")"
                | "choose" "(" expr ("," expr)* ")"
    v} *)

exception Error of string * Lexer.pos

val parse_program : string -> Ast.program
(** @raise Error on syntax errors, with the offending position.
    @raise Lexer.Error on lexical errors. *)

val parse_expr : string -> Ast.expr
(** Parses a standalone expression (must consume all input). *)

val parse_stmt : string -> Ast.stmt
(** Parses a standalone statement sequence (must consume all input). *)
