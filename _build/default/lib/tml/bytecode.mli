(** Stack bytecode for TML, mirroring the paper's setting where the
    analyzed program is available in compiled form and instrumentation is
    a {e code-to-code} transformation (paper, Sections 1 and 4.1).

    Instructions are split into {e silent} ones (stack, locals, jumps —
    thread-private, never a scheduling point) and {e observable} ones
    (shared accesses, synchronization, internal no-ops — each is one
    atomic event and one scheduling point). The instrumented variants
    [Instr_*] additionally execute Algorithm A atomically with the
    access; {!Instrument.instrument} introduces them. *)

open Trace

type instr =
  (* silent *)
  | Push of int
  | Pop
  | Load_local of int
  | Store_local of int
  | Prim of Ast.binop
      (** pops [b] then [a], pushes [a op b]; not used for [And]/[Or],
          which compile to jumps *)
  | Prim1 of Ast.unop
  | Jump of int  (** absolute target *)
  | Jump_if_zero of int
  | Jump_if_nonzero of int
  | Choose_jump of int list  (** scheduler picks one target *)
  (* observable, un-instrumented *)
  | Load_global of Types.var
  | Store_global of Types.var
  | Internal  (** the [nop] event *)
  | Acquire of string
  | Release of string
  | Wait_cond of string
  | Notify_cond of string
  (* observable, instrumented: same semantics plus Algorithm A *)
  | Instr_load of Types.var
  | Instr_store of Types.var
  | Instr_acquire of string
  | Instr_release of string
  | Instr_wait of string
  | Instr_notify of string
  | Halt

type image = {
  thread_names : string array;
  code : instr array array;  (** one code vector per thread *)
  nlocals : int array;  (** local-slot count per thread *)
  shared_init : (Types.var * Types.value) list;
  instrumented : bool;
}

val nthreads : image -> int

val is_silent : instr -> bool
val is_observable : instr -> bool

val instr_count : image -> int
(** Total instructions over all threads. *)

val validate : image -> (unit, string) result
(** Checks jump targets in range, local slots in range, [Halt]-terminated
    code vectors, and that [instrumented] matches the opcodes used. *)

val pp_instr : Format.formatter -> instr -> unit
val pp_image : Format.formatter -> image -> unit
