(** Abstract syntax of TML, the Threaded Mini Language.

    TML is the substrate standing in for the paper's multithreaded Java
    programs: a fixed set of threads communicating through shared integer
    variables, with locks and condition variables that the instrumentation
    lowers to dummy-variable writes (paper, Section 3.1).

    Granularity: every read and every write of a {e shared} variable is
    one atomic event, as the paper's sequential-consistency model assumes
    (Section 2.1). Local variables are thread-private and produce no
    events. *)

type unop = Neg  (** arithmetic negation *) | Not  (** logical negation: [!e] *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And  (** short-circuit; nonzero is true *)
  | Or   (** short-circuit *)

type expr =
  | Int of int
  | Var of string  (** shared or local, resolved by {!Typecheck} *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Choose of expr list
      (** [choose(e1,...,ek)]: nondeterministically select one branch
          (decided by the scheduler) and evaluate only that branch; models
          environment nondeterminism such as the paper's
          "possibly change value of radio". *)

type stmt =
  | Skip
  | Nop of int  (** [nop k;]: [k] internal events — irrelevant code *)
  | Assign of string * expr
  | Local_decl of string * expr  (** [local v = e;] *)
  | Seq of stmt list
  | If of expr * stmt * stmt
  | While of expr * stmt
  | Lock of string
  | Unlock of string
  | Sync of string * stmt  (** [sync (m) { s }] — Java synchronized block *)
  | Wait of string
  | Notify of string  (** wakes every thread waiting on the condition *)
  | Spawn of string
      (** [spawn t;]: activate the dormant thread named [t]. Threads that
          are the target of some [spawn] start dormant; {!Desugar} lowers
          activation to a handshake over a dummy synchronization variable,
          so the spawner's past happens-before the child's events — the
          paper's dynamic-thread extension on a fixed thread pool. *)
  | Join of string
      (** [join t;]: block until thread [t] has terminated; the child's
          past happens-before the joiner's subsequent events. *)

type thread = { tname : string; body : stmt }

type program = {
  shared : (string * int) list;  (** declarations with initial values *)
  threads : thread list;
}

val seq : stmt list -> stmt
(** Smart constructor: flattens nested sequences and drops [Skip]. *)

val program : shared:(string * int) list -> threads:(string * stmt) list -> program

(** {1 Traversals} *)

val expr_vars : expr -> string list
(** Variables read by an expression (sorted, unique). *)

val stmt_vars : stmt -> string list
(** Variables read or assigned (locals included; sorted, unique). *)

val stmt_size : stmt -> int
(** Number of AST statement nodes, for generators and metrics. *)

val equal_expr : expr -> expr -> bool
val equal_stmt : stmt -> stmt -> bool
val equal_program : program -> program -> bool
