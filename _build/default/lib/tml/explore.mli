(** Exhaustive exploration of the schedule space.

    Enumerates {e every} maximal run of a program — all thread
    interleavings at observable-event granularity and all [choose(...)]
    resolutions — by depth-first search over {!Sched.script} prefixes with
    replay from the initial state. This is what the paper's predictive
    analysis is validated against in our tests: a property violation is
    predictable iff some run in this enumeration exhibits it.

    Exploration replays the target once per decision node, so cost is
    quadratic in run length times the number of runs; intended for the
    small programs used in tests and for ground-truthing, not for
    production monitoring (the whole point of the paper is to avoid
    this enumeration of executions). *)

type exploration = {
  runs : (Sched.script * Vm.run_result) list;
      (** every maximal run with the script that reproduces it, in DFS
          discovery order *)
  complete : bool;  (** false when [max_runs] truncated the search *)
}

val explore :
  ?max_runs:int -> run:(sched:Sched.t -> Vm.run_result) -> unit -> exploration
(** Generic driver: [run] must create a fresh machine and drive it with
    the given scheduler (e.g. a closure over {!Vm.run_image} or
    {!Interp.run_program}). [max_runs] defaults to [10_000]. *)

val all_runs : ?max_runs:int -> ?fuel:int -> Bytecode.image -> exploration
(** Exhaustive runs of an image (instrumented or not). *)

val all_program_runs : ?max_runs:int -> ?fuel:int -> Ast.program -> exploration
(** Compile + instrument + explore. *)

val count_outcomes : exploration -> (Vm.outcome * int) list
(** Multiset of outcomes over all runs (outcomes compared structurally),
    most frequent first. *)
