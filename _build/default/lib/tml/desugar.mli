(** Lowering of dynamic-thread statements onto the fixed thread pool.

    TML threads all exist up front (the paper's fixed-thread setting),
    but [spawn]/[join] give programs the dynamic-creation {e behaviour}
    of the paper's Section 2 extension:

    - every thread targeted by some [spawn] becomes {e dormant}: its body
      is prefixed with a gate loop spinning on a dummy synchronization
      variable, so it produces no program events until activated;
    - [spawn t] is a write of [t]'s gate variable — the spawner's past
      happens-before everything the child does (exactly the edge
      {!Mvc.Dynamic.spawn} creates for truly dynamic populations);
    - every thread targeted by some [join] appends a write of its done
      variable; [join t] spins reading it, so the child's past
      happens-before the joiner's continuation.

    The gate/done variables live in the synchronization namespace
    ({!Trace.Types.notify_var}), so they are invisible to relevance
    filters and treated as synchronization by the race detector.

    A [spawn] that never executes leaves the dormant thread spinning
    (fuel exhaustion rather than deadlock), matching an orphan thread. *)

val spawn_gate : string -> Trace.Types.var
(** The dummy variable guarding activation of the named thread. *)

val join_flag : string -> Trace.Types.var

val desugar : Ast.program -> Ast.program
(** The result contains no [Spawn]/[Join] statements and declares the
    gate/done variables it introduced. Programs without [spawn]/[join]
    are returned unchanged. Run {!Typecheck.check} {e before} this pass
    for user-level diagnostics; the output also typechecks. *)

val uses_dynamic_threads : Ast.program -> bool
