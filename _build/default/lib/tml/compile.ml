open Bytecode

(* Growable code buffer with backpatching. *)
type buf = { mutable instrs : instr array; mutable len : int }

let new_buf () = { instrs = Array.make 64 Halt; len = 0 }

let emit buf i =
  if buf.len = Array.length buf.instrs then begin
    let bigger = Array.make (2 * buf.len) Halt in
    Array.blit buf.instrs 0 bigger 0 buf.len;
    buf.instrs <- bigger
  end;
  buf.instrs.(buf.len) <- i;
  buf.len <- buf.len + 1

let here buf = buf.len

(* Emits a placeholder jump and returns its address for later patching. *)
let emit_patchable buf =
  let at = here buf in
  emit buf (Jump (-1));
  at

let patch buf at i = buf.instrs.(at) <- i

let finish buf =
  emit buf Halt;
  Array.sub buf.instrs 0 buf.len

let compile_thread ~shared (t : Ast.thread) =
  let buf = new_buf () in
  let locals = Hashtbl.create 8 in
  let next_local = ref 0 in
  let module Sset = Set.Make (String) in
  let shared_set = Sset.of_list shared in
  let local_slot x =
    match Hashtbl.find_opt locals x with
    | Some i -> Some i
    | None -> None
  in
  let declare_local x =
    match Hashtbl.find_opt locals x with
    | Some i -> i
    | None ->
        let i = !next_local in
        incr next_local;
        Hashtbl.add locals x i;
        i
  in
  let rec compile_expr = function
    | Ast.Int n -> emit buf (Push n)
    | Ast.Var x -> (
        match local_slot x with
        | Some i -> emit buf (Load_local i)
        | None ->
            assert (Sset.mem x shared_set);
            emit buf (Load_global x))
    | Ast.Unop (op, e) ->
        compile_expr e;
        emit buf (Prim1 op)
    | Ast.Binop (Ast.And, a, b) ->
        (* a && b:   [a]; jz F; [b]; jz F; push 1; jmp E; F: push 0; E: *)
        compile_expr a;
        let jz1 = emit_patchable buf in
        compile_expr b;
        let jz2 = emit_patchable buf in
        emit buf (Push 1);
        let jend = emit_patchable buf in
        let lfalse = here buf in
        emit buf (Push 0);
        let lend = here buf in
        patch buf jz1 (Jump_if_zero lfalse);
        patch buf jz2 (Jump_if_zero lfalse);
        patch buf jend (Jump lend)
    | Ast.Binop (Ast.Or, a, b) ->
        compile_expr a;
        let jnz1 = emit_patchable buf in
        compile_expr b;
        let jnz2 = emit_patchable buf in
        emit buf (Push 0);
        let jend = emit_patchable buf in
        let ltrue = here buf in
        emit buf (Push 1);
        let lend = here buf in
        patch buf jnz1 (Jump_if_nonzero ltrue);
        patch buf jnz2 (Jump_if_nonzero ltrue);
        patch buf jend (Jump lend)
    | Ast.Binop (op, a, b) ->
        compile_expr a;
        compile_expr b;
        emit buf (Prim op)
    | Ast.Choose es ->
        (* choose(e1..ek): Choose_jump [L1..Lk]; Li: [ei]; jmp E *)
        let choose_at = emit_patchable buf in
        let branches =
          List.map
            (fun e ->
              let entry = here buf in
              compile_expr e;
              let jend = emit_patchable buf in
              (entry, jend))
            es
        in
        let lend = here buf in
        List.iter (fun (_, jend) -> patch buf jend (Jump lend)) branches;
        patch buf choose_at (Choose_jump (List.map fst branches))
  in
  let store_var x =
    match local_slot x with
    | Some i -> emit buf (Store_local i)
    | None ->
        assert (Sset.mem x shared_set);
        emit buf (Store_global x)
  in
  let rec compile_stmt = function
    | Ast.Skip -> ()
    | Ast.Nop k ->
        for _ = 1 to k do
          emit buf Internal
        done
    | Ast.Assign (x, e) ->
        compile_expr e;
        store_var x
    | Ast.Local_decl (x, e) ->
        compile_expr e;
        let i = declare_local x in
        emit buf (Store_local i)
    | Ast.Seq ss -> List.iter compile_stmt ss
    | Ast.If (c, a, Ast.Skip) ->
        compile_expr c;
        let jz = emit_patchable buf in
        compile_stmt a;
        patch buf jz (Jump_if_zero (here buf))
    | Ast.If (c, a, b) ->
        compile_expr c;
        let jz = emit_patchable buf in
        compile_stmt a;
        let jend = emit_patchable buf in
        let lelse = here buf in
        compile_stmt b;
        patch buf jz (Jump_if_zero lelse);
        patch buf jend (Jump (here buf))
    | Ast.While (c, body) ->
        let lcond = here buf in
        compile_expr c;
        let jz = emit_patchable buf in
        compile_stmt body;
        emit buf (Jump lcond);
        patch buf jz (Jump_if_zero (here buf))
    | Ast.Lock l -> emit buf (Acquire l)
    | Ast.Unlock l -> emit buf (Release l)
    | Ast.Sync (l, body) ->
        emit buf (Acquire l);
        compile_stmt body;
        emit buf (Release l)
    | Ast.Wait c -> emit buf (Wait_cond c)
    | Ast.Notify c -> emit buf (Notify_cond c)
    | Ast.Spawn _ | Ast.Join _ ->
        (* Desugar runs first; residual dynamic statements are a bug. *)
        assert false
  in
  compile_stmt t.body;
  (finish buf, !next_local)

let compile (p : Ast.program) =
  Typecheck.check_exn p;
  let p = Desugar.desugar p in
  let shared = Typecheck.shared_vars p in
  let compiled = List.map (compile_thread ~shared) p.threads in
  let image =
    { thread_names = Array.of_list (List.map (fun t -> t.Ast.tname) p.threads);
      code = Array.of_list (List.map fst compiled);
      nlocals = Array.of_list (List.map snd compiled);
      shared_init = p.shared;
      instrumented = false }
  in
  (match validate image with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Compile: produced invalid image: " ^ msg));
  image

let compile_string src = compile (Parser.parse_program src)
