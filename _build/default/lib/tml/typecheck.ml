type error = { thread : string option; message : string }

let pp_error ppf { thread; message } =
  match thread with
  | None -> Format.pp_print_string ppf message
  | Some t -> Format.fprintf ppf "thread %s: %s" t message

let error_to_string e = Format.asprintf "%a" pp_error e

let shared_vars (p : Ast.program) = List.map fst p.shared

let locals_of_thread (t : Ast.thread) =
  let rec go acc = function
    | Ast.Local_decl (x, _) -> x :: acc
    | Ast.Seq ss -> List.fold_left go acc ss
    | Ast.If (_, a, b) -> go (go acc a) b
    | Ast.While (_, b) | Ast.Sync (_, b) -> go acc b
    | Ast.Skip | Ast.Nop _ | Ast.Assign _ | Ast.Lock _ | Ast.Unlock _ | Ast.Wait _
    | Ast.Notify _ | Ast.Spawn _ | Ast.Join _ -> acc
  in
  List.rev (go [] t.body)

module Sset = Set.Make (String)

let rec dups seen = function
  | [] -> []
  | x :: rest -> if Sset.mem x seen then x :: dups seen rest else dups (Sset.add x seen) rest

let check (p : Ast.program) =
  let errors = ref [] in
  let err ?thread fmt = Format.kasprintf (fun message -> errors := { thread; message } :: !errors) fmt in
  List.iter (fun x -> err "duplicate shared variable %s" x) (dups Sset.empty (shared_vars p));
  List.iter
    (fun t -> err "duplicate thread name %s" t)
    (dups Sset.empty (List.map (fun t -> t.Ast.tname) p.threads));
  if p.threads = [] then err "program has no threads";
  let shared = Sset.of_list (shared_vars p) in
  let thread_names = Sset.of_list (List.map (fun t -> t.Ast.tname) p.threads) in
  let check_thread (t : Ast.thread) =
    let thread = t.tname in
    let err fmt = err ~thread fmt in
    (* [locals] is the set declared on every path so far; declaration
       inside a branch counts for the code after the branch only if both
       branches declare it — we keep the simpler, stricter rule that a
       local is visible from its declaration point onward in syntactic
       order, which is what the compiler implements. *)
    let locals = ref Sset.empty in
    let rec check_expr = function
      | Ast.Int _ -> ()
      | Ast.Var x ->
          if not (Sset.mem x shared || Sset.mem x !locals) then
            err "use of undeclared variable %s" x
      | Ast.Unop (_, e) -> check_expr e
      | Ast.Binop (_, a, b) ->
          check_expr a;
          check_expr b
      | Ast.Choose es ->
          if es = [] then err "choose() needs at least one alternative";
          List.iter check_expr es
    in
    let rec check_stmt = function
      | Ast.Skip -> ()
      | Ast.Nop k -> if k < 1 then err "nop count must be >= 1 (got %d)" k
      | Ast.Assign (x, e) ->
          check_expr e;
          if not (Sset.mem x shared || Sset.mem x !locals) then
            err "assignment to undeclared variable %s" x
      | Ast.Local_decl (x, e) ->
          check_expr e;
          if Sset.mem x shared then err "local %s shadows a shared variable" x;
          if Sset.mem x !locals then err "local %s redeclared" x;
          locals := Sset.add x !locals
      | Ast.Seq ss -> List.iter check_stmt ss
      | Ast.If (c, a, b) ->
          check_expr c;
          check_stmt a;
          check_stmt b
      | Ast.While (c, b) ->
          check_expr c;
          check_stmt b
      | Ast.Sync (_, b) -> check_stmt b
      | Ast.Spawn target | Ast.Join target ->
          if not (Sset.mem target thread_names) then
            err "spawn/join of unknown thread %s" target;
          if target = thread then err "a thread cannot spawn or join itself"
      | Ast.Lock _ | Ast.Unlock _ | Ast.Wait _ | Ast.Notify _ -> ()
    in
    check_stmt t.body
  in
  List.iter check_thread p.threads;
  match List.rev !errors with [] -> Ok () | es -> Error es

let check_exn p =
  match check p with
  | Ok () -> ()
  | Error es ->
      invalid_arg
        ("Typecheck: " ^ String.concat "; " (List.map error_to_string es))
