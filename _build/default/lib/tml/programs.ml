let parse = Parser.parse_program

(* {1 Paper examples} *)

let landing_bounded_src =
  {|
  // Fig. 1, environment reduced to the single radio-off write.
  shared landing = 0, approved = 0, radio = 1;

  thread control {
    // askLandingApproval()
    if (radio == 0) { approved = 0; } else { approved = 1; }
    if (approved == 1) {
      landing = 1;   // "Landing started"
    }
  }

  thread environment {
    radio = 0;       // checkRadio() turning the signal off
  }
|}

let landing_bounded = parse landing_bounded_src

let landing_observed =
  (* control: read radio, write approved, read approved, write landing;
     then environment: write radio. *)
  Sched.[ Pick 0; Pick 0; Pick 0; Pick 0; Pick 1 ]

let landing_full ~rounds =
  if rounds < 1 then invalid_arg "Programs.landing_full: rounds must be >= 1";
  parse
    (Printf.sprintf
       {|
  shared landing = 0, approved = 0, radio = 1;

  thread control {
    if (radio == 0) { approved = 0; } else { approved = 1; }
    if (approved == 1) {
      nop;
      landing = 1;
    }
  }

  thread environment {
    local k = 0;
    while (k < %d) {
      if (radio == 1) { radio = choose(0, 1); }
      k = k + 1;
    }
  }
|}
       rounds)

let xyz_src =
  {|
  // Example 2: one thread runs x++; y = x + 1, the other z = x + 1; x++.
  shared x = -1, y = 0, z = 0;

  thread t1 {
    x = x + 1;
    y = x + 1;
  }

  thread t2 {
    z = x + 1;
    x = x + 1;
  }
|}

let xyz = parse xyz_src

let xyz_observed =
  (* t1: read x, write x=0 | t2: read x, write z=1 | t1: read x |
     t2: read x, write x=1 | t1: write y=1 *)
  Sched.[ Pick 0; Pick 0; Pick 1; Pick 1; Pick 0; Pick 1; Pick 1; Pick 0 ]

(* {1 Further workloads} *)

let counter_body ~locked ~increments =
  let guard body = if locked then Printf.sprintf "sync (m) { %s }" body else body in
  Printf.sprintf
    {|
  shared counter = 0;

  thread inc1 {
    local i = 0;
    while (i < %d) {
      %s
      i = i + 1;
    }
  }

  thread inc2 {
    local i = 0;
    while (i < %d) {
      %s
      i = i + 1;
    }
  }
|}
    increments
    (guard "counter = counter + 1;")
    increments
    (guard "counter = counter + 1;")

let racy_counter ~increments =
  if increments < 1 then invalid_arg "Programs.racy_counter: increments must be >= 1";
  parse (counter_body ~locked:false ~increments)

let locked_counter ~increments =
  if increments < 1 then invalid_arg "Programs.locked_counter: increments must be >= 1";
  parse (counter_body ~locked:true ~increments)

let producer_consumer ~items =
  if items < 1 then invalid_arg "Programs.producer_consumer: items must be >= 1";
  parse
    (Printf.sprintf
       {|
  shared buf = 0, full = 0;

  thread producer {
    local i = 0;
    while (i < %d) {
      while (full == 1) { wait cv; }
      buf = i + 100;
      full = 1;
      notify cv;
      i = i + 1;
    }
  }

  thread consumer {
    local j = 0;
    while (j < %d) {
      while (full == 0) { wait cv; }
      buf = 0;
      full = 0;
      notify cv;
      j = j + 1;
    }
  }
|}
       items items)

let bank_transfer_src =
  {|
  shared acct_a = 100, acct_b = 100;

  thread debit_a {
    lock la;
    lock lb;
    acct_a = acct_a - 10;
    acct_b = acct_b + 10;
    unlock lb;
    unlock la;
  }

  thread debit_b {
    lock lb;
    lock la;
    acct_b = acct_b - 20;
    acct_a = acct_a + 20;
    unlock la;
    unlock lb;
  }
|}

let bank_transfer = parse bank_transfer_src

let bank_transfer_ordered_src =
  {|
  shared acct_a = 100, acct_b = 100;

  thread debit_a {
    lock la;
    lock lb;
    acct_a = acct_a - 10;
    acct_b = acct_b + 10;
    unlock lb;
    unlock la;
  }

  thread debit_b {
    lock la;
    lock lb;
    acct_b = acct_b - 20;
    acct_a = acct_a + 20;
    unlock lb;
    unlock la;
  }
|}

let bank_transfer_ordered = parse bank_transfer_ordered_src

let peterson_src =
  {|
  shared flag0 = 0, flag1 = 0, turn = 0, counter = 0;

  thread p0 {
    flag0 = 1;
    turn = 1;
    while (flag1 == 1 && turn == 1) { nop; }
    counter = counter + 1;   // critical section
    flag0 = 0;
  }

  thread p1 {
    flag1 = 1;
    turn = 0;
    while (flag0 == 1 && turn == 0) { nop; }
    counter = counter + 1;   // critical section
    flag1 = 0;
  }
|}

let peterson = parse peterson_src

let dekker_sketch_src =
  {|
  // Naive flag-based mutual exclusion: both threads can pass the test
  // before either write is seen, so the increments can race.
  shared flag0 = 0, flag1 = 0, counter = 0;

  thread a {
    flag0 = 1;
    if (flag1 == 0) { counter = counter + 1; }
    flag0 = 0;
  }

  thread b {
    flag1 = 1;
    if (flag0 == 0) { counter = counter + 1; }
    flag1 = 0;
  }
|}

let dekker_sketch = parse dekker_sketch_src

let fork_join ~workers =
  if workers < 1 then invalid_arg "Programs.fork_join: workers must be >= 1";
  let buf = Buffer.create 256 in
  Buffer.add_string buf "shared total = 0";
  for i = 0 to workers - 1 do
    Buffer.add_string buf (Printf.sprintf ", in%d = %d, out%d = 0" i (i + 1) i)
  done;
  Buffer.add_string buf ";\n";
  Buffer.add_string buf "thread master {\n";
  for i = 0 to workers - 1 do
    Buffer.add_string buf (Printf.sprintf "  spawn worker%d;\n" i)
  done;
  for i = 0 to workers - 1 do
    Buffer.add_string buf (Printf.sprintf "  join worker%d;\n" i)
  done;
  for i = 0 to workers - 1 do
    Buffer.add_string buf (Printf.sprintf "  total = total + out%d;\n" i)
  done;
  Buffer.add_string buf "}\n";
  for i = 0 to workers - 1 do
    Buffer.add_string buf
      (Printf.sprintf "thread worker%d { out%d = in%d * in%d; }\n" i i i i)
  done;
  parse (Buffer.contents buf)

let spawn_unsynchronized_src =
  {|
  // The spawn orders the worker AFTER the master's past, but nothing
  // orders the two writes below: a predicted race.
  shared cell = 0;

  thread master {
    cell = 1;
    spawn worker;
    cell = 2;
  }

  thread worker {
    cell = 3;
  }
|}

let spawn_unsynchronized = parse spawn_unsynchronized_src

let philosophers ~n =
  if n < 2 then invalid_arg "Programs.philosophers: n must be >= 2";
  let buf = Buffer.create 256 in
  Buffer.add_string buf "shared meals = 0;\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "thread phil%d { lock fork%d; lock fork%d; meals = meals + 1; unlock fork%d; \
          unlock fork%d; }\n"
         i i ((i + 1) mod n) ((i + 1) mod n) i)
  done;
  parse (Buffer.contents buf)

let pipeline ~stages =
  if stages < 2 then invalid_arg "Programs.pipeline: stages must be >= 2";
  let buf = Buffer.create 256 in
  let cell i = Printf.sprintf "c%d" i in
  Buffer.add_string buf "shared ";
  for i = 1 to stages do
    if i > 1 then Buffer.add_string buf ", ";
    Buffer.add_string buf (Printf.sprintf "%s = 0" (cell i))
  done;
  Buffer.add_string buf ";\n";
  Buffer.add_string buf (Printf.sprintf "thread source { %s = 1; }\n" (cell 1));
  for i = 1 to stages - 1 do
    Buffer.add_string buf
      (Printf.sprintf "thread stage%d { while (%s == 0) { nop; } %s = %s + 1; }\n" i
         (cell i) (cell (i + 1)) (cell i))
  done;
  parse (Buffer.contents buf)

let independent ~threads ~writes =
  if threads < 1 then invalid_arg "Programs.independent: threads must be >= 1";
  if writes < 1 then invalid_arg "Programs.independent: writes must be >= 1";
  let buf = Buffer.create 256 in
  Buffer.add_string buf "shared ";
  for i = 0 to threads - 1 do
    if i > 0 then Buffer.add_string buf ", ";
    Buffer.add_string buf (Printf.sprintf "v%d = 0" i)
  done;
  Buffer.add_string buf ";\n";
  for i = 0 to threads - 1 do
    Buffer.add_string buf (Printf.sprintf "thread w%d {\n" i);
    for j = 1 to writes do
      Buffer.add_string buf (Printf.sprintf "  v%d = %d;\n" i j)
    done;
    Buffer.add_string buf "}\n"
  done;
  parse (Buffer.contents buf)

let named_sources =
  [ ("landing", landing_bounded_src);
    ("xyz", xyz_src);
    ("bank-transfer", bank_transfer_src);
    ("bank-transfer-ordered", bank_transfer_ordered_src);
    ("peterson", peterson_src);
    ("dekker-sketch", dekker_sketch_src);
    ("spawn-unsynchronized", spawn_unsynchronized_src) ]

let all_named () = List.map (fun (name, src) -> (name, parse src)) named_sources
let source_of_name name = List.assoc_opt name named_sources
