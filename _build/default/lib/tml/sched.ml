open Trace

type decision = Pick of Types.tid | Choice of int
type script = decision list

exception Replay_mismatch of string

type t = {
  name : string;
  pick_fn : Types.tid list -> Types.tid;
  choose_fn : int -> int;
}

let name t = t.name

let pick t ~runnable =
  if runnable = [] then invalid_arg "Sched.pick: no runnable threads";
  let tid = t.pick_fn runnable in
  assert (List.mem tid runnable);
  tid

let choose t k =
  if k <= 0 then invalid_arg "Sched.choose: need at least one branch";
  let c = t.choose_fn k in
  assert (c >= 0 && c < k);
  c

let round_robin () =
  let last = ref (-1) in
  let pick_fn runnable =
    let after = List.filter (fun tid -> tid > !last) runnable in
    let tid = match after with tid :: _ -> tid | [] -> List.hd runnable in
    last := tid;
    tid
  in
  { name = "round-robin"; pick_fn; choose_fn = (fun _ -> 0) }

let random ~seed =
  let state = Random.State.make [| seed |] in
  let pick_fn runnable =
    List.nth runnable (Random.State.int state (List.length runnable))
  in
  let choose_fn k = Random.State.int state k in
  { name = Printf.sprintf "random(seed=%d)" seed; pick_fn; choose_fn }

let random_biased ~seed ~stickiness =
  if stickiness < 0 then invalid_arg "Sched.random_biased: negative stickiness";
  let state = Random.State.make [| seed; stickiness |] in
  let last = ref None in
  let pick_fn runnable =
    let tid =
      match !last with
      | Some tid when List.mem tid runnable && Random.State.int state (stickiness + 1) > 0 ->
          tid
      | _ -> List.nth runnable (Random.State.int state (List.length runnable))
    in
    last := Some tid;
    tid
  in
  let choose_fn k = Random.State.int state k in
  { name = Printf.sprintf "random-biased(seed=%d,stickiness=%d)" seed stickiness;
    pick_fn; choose_fn }

let of_script script =
  let remaining = ref script in
  let next what =
    match !remaining with
    | [] -> raise (Replay_mismatch ("script exhausted, expected " ^ what))
    | d :: rest ->
        remaining := rest;
        d
  in
  let pick_fn runnable =
    match next "a pick" with
    | Pick tid ->
        if List.mem tid runnable then tid
        else
          raise
            (Replay_mismatch
               (Printf.sprintf "script picks T%d which is not runnable" tid))
    | Choice _ -> raise (Replay_mismatch "script has a choice where a pick is needed")
  in
  let choose_fn k =
    match next "a choice" with
    | Choice c ->
        if c >= 0 && c < k then c
        else raise (Replay_mismatch (Printf.sprintf "script choice %d out of %d" c k))
    | Pick _ -> raise (Replay_mismatch "script has a pick where a choice is needed")
  in
  { name = "script"; pick_fn; choose_fn }

let make_raw ~name ~pick_fn ~choose_fn = { name; pick_fn; choose_fn }

let recording inner =
  let recorded = ref [] in
  let pick_fn runnable =
    let tid = inner.pick_fn runnable in
    recorded := Pick tid :: !recorded;
    tid
  in
  let choose_fn k =
    let c = inner.choose_fn k in
    recorded := Choice c :: !recorded;
    c
  in
  ( { name = inner.name ^ "+rec"; pick_fn; choose_fn },
    fun () -> List.rev !recorded )

let pp_decision ppf = function
  | Pick tid -> Format.fprintf ppf "P%d" tid
  | Choice c -> Format.fprintf ppf "C%d" c

let pp_script ppf script =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
       pp_decision)
    script
