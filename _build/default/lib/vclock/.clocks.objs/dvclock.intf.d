lib/vclock/dvclock.mli: Format Vclock
