lib/vclock/vclock.ml: Array Format Hashtbl List Stdlib String
