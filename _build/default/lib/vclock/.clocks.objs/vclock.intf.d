lib/vclock/vclock.mli: Format
