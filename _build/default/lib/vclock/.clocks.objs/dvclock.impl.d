lib/vclock/dvclock.ml: Array Format Int List Map Stdlib Vclock
