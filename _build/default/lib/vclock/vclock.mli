(** Multithreaded vector clocks (MVCs).

    An MVC is an [n]-dimensional vector of natural numbers, one slot per
    thread of a multithreaded system with a fixed number of threads.
    [v.(j)] counts the relevant events of thread [j] that the owner of
    the clock is aware of (paper, Section 3).

    Values are immutable: every operation returns a fresh clock, so MVCs
    can be stored in emitted messages without defensive copies. *)

type t

val dim : t -> int
(** Number of threads the clock covers. *)

val zero : int -> t
(** [zero n] is the [n]-dimensional clock with all components 0.
    @raise Invalid_argument if [n <= 0]. *)

val get : t -> int -> int
(** [get v j] is component [j] (0-based).
    @raise Invalid_argument if [j] is out of bounds. *)

val set : t -> int -> int -> t
(** [set v j k] is [v] with component [j] replaced by [k].
    @raise Invalid_argument if [j] is out of bounds or [k < 0]. *)

val inc : t -> int -> t
(** [inc v j] increments component [j]; the [Vi\[i\] <- Vi\[i\] + 1] step
    of Algorithm A. *)

val max : t -> t -> t
(** Componentwise maximum, the join of the MVC lattice.
    @raise Invalid_argument on dimension mismatch. *)

val leq : t -> t -> bool
(** [leq v w] iff [v.(j) <= w.(j)] for all [j]. *)

val lt : t -> t -> bool
(** Strict order: [leq v w] and [v <> w]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order (lexicographic) for use in sets and maps; unrelated to
    the causal order [leq]. *)

val concurrent : t -> t -> bool
(** [concurrent v w] iff neither [leq v w] nor [leq w v]. *)

val of_array : int array -> t
(** @raise Invalid_argument if empty or any component is negative. *)

val to_array : t -> int array

val of_list : int list -> t

val to_list : t -> int list

val sum : t -> int
(** Sum of all components — the lattice level of a cut with this clock. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(v0,v1,...)]. *)

val to_string : t -> string

val of_string : string -> t
(** Inverse of {!to_string}.
    @raise Invalid_argument on malformed input. *)

val hash : t -> int
