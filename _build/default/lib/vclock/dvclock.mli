(** Sparse (dynamic-dimension) vector clocks.

    The paper fixes the number of threads but notes (Section 2) that the
    technique "can be easily extended to systems consisting of a variable
    number of threads, where these can be dynamically created and/or
    destroyed". A sparse clock maps thread ids to counts, with absent
    entries reading 0, so the dimension never needs declaring: spawning a
    thread simply starts using its id. *)

type t

val empty : t
(** The zero clock of any dimension. *)

val get : t -> int -> int
(** Absent ids read 0.
    @raise Invalid_argument on a negative id. *)

val set : t -> int -> int -> t
(** @raise Invalid_argument on negative id or count. *)

val inc : t -> int -> t
val max : t -> t -> t
val leq : t -> t -> bool
val lt : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val concurrent : t -> t -> bool

val support : t -> int list
(** Thread ids with nonzero count, ascending. *)

val sum : t -> int

val of_list : (int * int) list -> t
val to_list : t -> (int * int) list
(** Nonzero entries, ascending by id. *)

val of_vclock : Vclock.t -> t
val to_vclock : dim:int -> t -> Vclock.t
(** @raise Invalid_argument if some entry's id is [>= dim]. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{0:2, 3:1}]. *)

val to_string : t -> string
