type t = int array

let dim = Array.length

let check_dim n = if n <= 0 then invalid_arg "Vclock: dimension must be positive"

let zero n =
  check_dim n;
  Array.make n 0

let get v j =
  if j < 0 || j >= Array.length v then invalid_arg "Vclock.get: index out of bounds";
  v.(j)

let set v j k =
  if j < 0 || j >= Array.length v then invalid_arg "Vclock.set: index out of bounds";
  if k < 0 then invalid_arg "Vclock.set: negative component";
  let w = Array.copy v in
  w.(j) <- k;
  w

let inc v j = set v j (get v j + 1)

let same_dim v w =
  if Array.length v <> Array.length w then invalid_arg "Vclock: dimension mismatch"

let max v w =
  same_dim v w;
  Array.init (Array.length v) (fun j -> Stdlib.max v.(j) w.(j))

let leq v w =
  same_dim v w;
  let rec go j = j >= Array.length v || (v.(j) <= w.(j) && go (j + 1)) in
  go 0

let equal v w =
  same_dim v w;
  v = w

let lt v w = leq v w && not (equal v w)
let compare = Stdlib.compare
let concurrent v w = (not (leq v w)) && not (leq w v)

let of_array a =
  check_dim (Array.length a);
  Array.iter (fun k -> if k < 0 then invalid_arg "Vclock.of_array: negative component") a;
  Array.copy a

let to_array = Array.copy
let of_list l = of_array (Array.of_list l)
let to_list = Array.to_list
let sum = Array.fold_left ( + ) 0

let pp ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (to_list v)

let to_string v = Format.asprintf "%a" pp v

let of_string s =
  let n = String.length s in
  if n < 2 || s.[0] <> '(' || s.[n - 1] <> ')' then
    invalid_arg "Vclock.of_string: expected (k0,k1,...)";
  let body = String.sub s 1 (n - 2) in
  let parts = String.split_on_char ',' body in
  let ints =
    List.map
      (fun p ->
        match int_of_string_opt (String.trim p) with
        | Some k -> k
        | None -> invalid_arg "Vclock.of_string: malformed component")
      parts
  in
  of_list ints

let hash = Hashtbl.hash
