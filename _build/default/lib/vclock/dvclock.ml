module Imap = Map.Make (Int)

(* Invariant: no zero entries are stored, so structural equality of the
   maps is clock equality. *)
type t = int Imap.t

let empty = Imap.empty

let check_id i = if i < 0 then invalid_arg "Dvclock: negative thread id"

let get v i =
  check_id i;
  match Imap.find_opt i v with Some k -> k | None -> 0

let set v i k =
  check_id i;
  if k < 0 then invalid_arg "Dvclock.set: negative count";
  if k = 0 then Imap.remove i v else Imap.add i k v

let inc v i = set v i (get v i + 1)

let max a b =
  Imap.union (fun _ x y -> Some (Stdlib.max x y)) a b

let leq a b = Imap.for_all (fun i k -> k <= get b i) a
let equal = Imap.equal Int.equal
let lt a b = leq a b && not (equal a b)
let compare = Imap.compare Int.compare
let concurrent a b = (not (leq a b)) && not (leq b a)
let support v = List.map fst (Imap.bindings v)
let sum v = Imap.fold (fun _ k acc -> acc + k) v 0

let of_list l = List.fold_left (fun v (i, k) -> set v i k) empty l
let to_list v = Imap.bindings v

let of_vclock vc =
  let v = ref empty in
  for i = 0 to Vclock.dim vc - 1 do
    v := set !v i (Vclock.get vc i)
  done;
  !v

let to_vclock ~dim v =
  List.iter
    (fun (i, _) ->
      if i >= dim then invalid_arg "Dvclock.to_vclock: entry beyond dimension")
    (to_list v);
  Vclock.of_array (Array.init dim (get v))

let pp ppf v =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (i, k) -> Format.fprintf ppf "%d:%d" i k))
    (to_list v)

let to_string v = Format.asprintf "%a" pp v
