open Trace

type t = {
  nthreads : int;
  init : (Types.var * Types.value) list;
  buffers : (int, Message.t) Hashtbl.t array;  (* per thread: index -> message *)
  next_release : int array;  (* per thread: next index to release *)
  mutable added : int;
  mutable rev_all : Message.t list;
}

let create ~nthreads ~init =
  if nthreads <= 0 then invalid_arg "Ingest.create: nthreads must be positive";
  { nthreads;
    init;
    buffers = Array.init nthreads (fun _ -> Hashtbl.create 16);
    next_release = Array.make nthreads 1;
    added = 0;
    rev_all = [] }

let add t (m : Message.t) =
  if m.tid < 0 || m.tid >= t.nthreads then invalid_arg "Ingest.add: thread id out of range";
  let seq = Message.seq m in
  if Hashtbl.mem t.buffers.(m.tid) seq || seq < t.next_release.(m.tid) then
    invalid_arg
      (Printf.sprintf "Ingest.add: duplicate message (thread %d, index %d)" m.tid seq);
  Hashtbl.replace t.buffers.(m.tid) seq m;
  t.added <- t.added + 1;
  t.rev_all <- m :: t.rev_all

let add_all t ms = List.iter (add t) ms
let added t = t.added

let released t =
  Array.to_list t.next_release |> List.fold_left (fun acc k -> acc + k - 1) 0

let pending t = t.added - released t

let take_ready t =
  let out = ref [] in
  for tid = 0 to t.nthreads - 1 do
    let continue = ref true in
    while !continue do
      let k = t.next_release.(tid) in
      match Hashtbl.find_opt t.buffers.(tid) k with
      | Some m ->
          Hashtbl.remove t.buffers.(tid) k;
          t.next_release.(tid) <- k + 1;
          out := m :: !out
      | None -> continue := false
    done
  done;
  List.rev !out

let computation t =
  Computation.of_messages ~nthreads:t.nthreads ~init:t.init (List.rev t.rev_all)
