(** Online message ingestion.

    The observer receives messages [⟨e, i, V⟩] in arbitrary order
    (Section 4). The ingester buffers them and releases, per thread, the
    contiguous prefix [1..k] of relevant-event indices seen so far — the
    events whose lattice levels can already be built. *)

open Trace

type t

val create : nthreads:int -> init:(Types.var * Types.value) list -> t

val add : t -> Message.t -> unit
(** @raise Invalid_argument on a thread id out of range or a duplicate
    (thread, index) pair. *)

val add_all : t -> Message.t list -> unit

val added : t -> int
(** Total messages received. *)

val released : t -> int
(** Messages already released by {!take_ready}. *)

val pending : t -> int
(** Buffered messages still missing a predecessor. *)

val take_ready : t -> Message.t list
(** Drains every message that has become deliverable (its thread's
    earlier messages all seen and drained), in thread-index order —
    repeated calls yield disjoint batches. *)

val computation : t -> (Computation.t, string) result
(** Everything added so far as a computation; fails if gaps remain. *)
