(** Simulated delivery channels between the instrumented program and the
    observer.

    JMPaX ships messages over a socket, and the paper stresses that
    analyzing the {e causal order} — rather than the arrival order —
    makes the observer robust to "potential reordering of delivered
    messages (e.g., due to using multiple channels to reduce the
    monitoring overhead)" (Section 2.2). These channels produce such
    reorderings deterministically so tests and benches can exercise that
    robustness. *)

open Trace

val identity : Message.t list -> Message.t list
(** In-order delivery. *)

val shuffle : seed:int -> Message.t list -> Message.t list
(** A uniform random permutation — the adversarial network. *)

val bounded_reorder : seed:int -> window:int -> Message.t list -> Message.t list
(** Realistic jitter: at each delivery point one of the oldest [window]
    undelivered messages is delivered, so no message overtakes more than
    [window - 1] others.
    @raise Invalid_argument if [window < 1]. *)

val per_thread_channels : Message.t list -> Message.t list
(** One FIFO channel per emitting thread, drained round-robin: per-thread
    order is preserved (as a real per-thread socket would), global order
    is not. *)

val is_plausible_delivery : original:Message.t list -> Message.t list -> bool
(** True when the second list is a permutation of the first that
    preserves each thread's message order — what {!identity} and
    {!per_thread_channels} produce. {!shuffle} and {!bounded_reorder}
    may reorder within a thread too; the observer handles both. *)
