open Trace

let identity ms = ms

let shuffle ~seed ms =
  let state = Random.State.make [| seed |] in
  let a = Array.of_list ms in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int state (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let bounded_reorder ~seed ~window ms =
  if window < 1 then invalid_arg "Channel.bounded_reorder: window must be >= 1";
  let state = Random.State.make [| seed; window |] in
  let rec drain pending delivered =
    match pending with
    | [] -> List.rev delivered
    | _ ->
        let k = min window (List.length pending) in
        let pick = Random.State.int state k in
        let chosen = List.nth pending pick in
        let rest = List.filteri (fun i _ -> i <> pick) pending in
        drain rest (chosen :: delivered)
  in
  drain ms []

let per_thread_channels ms =
  let tids =
    List.sort_uniq compare (List.map (fun (m : Message.t) -> m.tid) ms)
  in
  let queues =
    List.map (fun tid -> ref (List.filter (fun (m : Message.t) -> m.tid = tid) ms)) tids
  in
  let out = ref [] in
  let remaining = ref (List.length ms) in
  while !remaining > 0 do
    List.iter
      (fun q ->
        match !q with
        | [] -> ()
        | m :: rest ->
            q := rest;
            decr remaining;
            out := m :: !out)
      queues
  done;
  List.rev !out

let is_plausible_delivery ~original delivered =
  let per_thread ms tid =
    List.filter (fun (m : Message.t) -> m.tid = tid) ms
  in
  let tids =
    List.sort_uniq compare (List.map (fun (m : Message.t) -> m.tid) original)
  in
  List.length original = List.length delivered
  && List.for_all
       (fun tid ->
         List.equal Message.equal (per_thread original tid) (per_thread delivered tid))
       tids
