open Trace

type node = {
  id : int;
  cut : int array;
  state : Pastltl.State.t;
  level : int;
}

type edge = { src : int; dst : int; label : Message.t }

type t = {
  comp : Computation.t;
  nodes : node array;
  by_cut : (int list, int) Hashtbl.t;
  succ : (Message.t * int) list array;  (* indexed by node id *)
  pred : (Message.t * int) list array;
  levels : int list array;  (* node ids per level, ascending *)
}

exception Too_large of int

let build ?(max_nodes = 200_000) comp =
  let by_cut = Hashtbl.create 64 in
  let rev_nodes = ref [] in
  let rev_edges = ref [] in
  let count = ref 0 in
  let add_node cut state level =
    let id = !count in
    incr count;
    if !count > max_nodes then raise (Too_large max_nodes);
    let n = { id; cut = Array.copy cut; state; level } in
    Hashtbl.replace by_cut (Array.to_list cut) id;
    rev_nodes := n :: !rev_nodes;
    n
  in
  let bottom = add_node (Computation.bottom comp) (Computation.init_state comp) 0 in
  let frontier = ref [ bottom ] in
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun n ->
        List.iter
          (fun (tid, m) ->
            let cut' = Array.copy n.cut in
            cut'.(tid) <- cut'.(tid) + 1;
            let key = Array.to_list cut' in
            let dst =
              match Hashtbl.find_opt by_cut key with
              | Some id -> id
              | None ->
                  let n' = add_node cut' (Computation.apply n.state m) (n.level + 1) in
                  next := n' :: !next;
                  n'.id
            in
            rev_edges := { src = n.id; dst; label = m } :: !rev_edges)
          (Computation.enabled comp n.cut))
      !frontier;
    frontier := List.rev !next
  done;
  let nodes = Array.of_list (List.rev !rev_nodes) in
  let succ = Array.make (Array.length nodes) [] in
  let pred = Array.make (Array.length nodes) [] in
  List.iter
    (fun e ->
      succ.(e.src) <- (e.label, e.dst) :: succ.(e.src);
      pred.(e.dst) <- (e.label, e.src) :: pred.(e.dst))
    !rev_edges;
  let max_level = Array.fold_left (fun acc n -> max acc n.level) 0 nodes in
  let levels = Array.make (max_level + 1) [] in
  Array.iter (fun n -> levels.(n.level) <- n.id :: levels.(n.level)) nodes;
  Array.iteri (fun i ids -> levels.(i) <- List.rev ids) levels;
  { comp; nodes; by_cut; succ; pred; levels }

let computation t = t.comp
let node_count t = Array.length t.nodes
let edge_count t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.succ

let node t id =
  if id < 0 || id >= Array.length t.nodes then invalid_arg "Lattice.node: bad id";
  t.nodes.(id)

let bottom t = t.nodes.(0)

let top t =
  let full = Array.to_list (Computation.top t.comp) in
  Option.map (node t) (Hashtbl.find_opt t.by_cut full)

let compare_nodes a b = compare (a.level, Array.to_list a.cut) (b.level, Array.to_list b.cut)

let nodes t = List.sort compare_nodes (Array.to_list t.nodes)

let level t l =
  if l < 0 || l >= Array.length t.levels then []
  else List.sort compare_nodes (List.map (node t) t.levels.(l))

let level_count t = Array.length t.levels
let max_width t = Array.fold_left (fun acc ids -> max acc (List.length ids)) 0 t.levels

let successors t n = List.rev_map (fun (m, id) -> (m, node t id)) t.succ.(n.id)
let predecessors t n = List.rev_map (fun (m, id) -> (m, node t id)) t.pred.(n.id)

let run_count t =
  match top t with
  | None -> 0
  | Some _ ->
      let paths = Array.make (node_count t) 0 in
      paths.(0) <- 1;
      (* Node ids are assigned in BFS order, so every edge goes from a
         smaller to a larger id. *)
      Array.iteri
        (fun src outs ->
          List.iter (fun (_, dst) -> paths.(dst) <- paths.(dst) + paths.(src)) outs)
        t.succ;
      let top_node = Option.get (top t) in
      paths.(top_node.id)

let runs ?(max_runs = 100_000) t =
  match top t with
  | None -> []
  | Some top_node ->
      let out = ref [] in
      let count = ref 0 in
      let rec go n acc =
        if n.id = top_node.id then begin
          incr count;
          if !count > max_runs then raise (Too_large max_runs);
          out := List.rev acc :: !out
        end
        else
          List.iter (fun (m, n') -> go n' (m :: acc)) (List.sort compare (successors t n))
      in
      go (bottom t) [];
      List.rev !out

let states_of_run t run =
  let init = Computation.init_state t.comp in
  let rec go state acc = function
    | [] -> List.rev (state :: acc)
    | m :: rest -> go (Computation.apply state m) (state :: acc) rest
  in
  go init [] run

let to_dot ?(highlight = fun _ -> false) t =
  let vars = Computation.variables t.comp in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph lattice {\n";
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";
  Buffer.add_string buf
    (Printf.sprintf "  label=\"computation lattice over <%s>\";\n"
       (String.concat "," vars));
  Array.iter
    (fun n ->
      let label =
        Format.asprintf "%a" (Pastltl.State.pp_values ~vars) n.state
      in
      let color = if highlight n then ", style=filled, fillcolor=\"#ffc0c0\"" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\n(%s)\"%s];\n" n.id label
           (String.concat "," (List.map string_of_int (Array.to_list n.cut)))
           color))
    t.nodes;
  Array.iteri
    (fun src outs ->
      List.iter
        (fun ((m : Message.t), dst) ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"%s=%d\"];\n" src dst m.var m.value))
        outs)
    t.succ;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  let vars = Computation.variables t.comp in
  Format.fprintf ppf "@[<v>lattice: %d nodes, %d edges, %d runs@," (node_count t)
    (edge_count t) (run_count t);
  for l = 0 to level_count t - 1 do
    Format.fprintf ppf "level %d:" l;
    List.iter
      (fun n -> Format.fprintf ppf " %a" (Pastltl.State.pp_values ~vars) n.state)
      (level t l);
    Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "@]"
