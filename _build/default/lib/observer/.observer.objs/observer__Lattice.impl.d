lib/observer/lattice.ml: Array Buffer Computation Format Hashtbl List Message Option Pastltl Printf String Trace
