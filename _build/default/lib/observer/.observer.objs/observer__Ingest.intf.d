lib/observer/ingest.mli: Computation Message Trace Types
