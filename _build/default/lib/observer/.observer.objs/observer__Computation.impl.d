lib/observer/computation.ml: Array Format Hashtbl List Message Pastltl Printf Set String Trace Types Vclock
