lib/observer/channel.mli: Message Trace
