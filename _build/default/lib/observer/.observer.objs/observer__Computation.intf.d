lib/observer/computation.mli: Format Message Pastltl Trace Types
