lib/observer/lattice.mli: Computation Format Message Pastltl Trace
