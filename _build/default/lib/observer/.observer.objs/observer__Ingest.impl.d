lib/observer/ingest.ml: Array Computation Hashtbl List Message Printf Trace Types
