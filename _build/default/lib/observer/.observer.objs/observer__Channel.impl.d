lib/observer/channel.ml: Array List Message Random Trace
