(** The observer's abstraction of the running program: the
    {e multithreaded computation}, i.e. the relevant events with their
    MVCs and the causal partial order [⊳] recovered from them via
    Theorem 3 (paper, Sections 2.2 and 4). *)

open Trace

type t

val of_messages :
  nthreads:int ->
  init:(Types.var * Types.value) list ->
  Message.t list ->
  (t, string) result
(** Builds a computation from messages received {e in any order}: they
    are grouped by emitting thread and sorted by their per-thread index
    [V\[i\]]. Fails if some thread's indices are not exactly [1..k] (a
    lost or duplicated message). *)

val of_messages_exn :
  nthreads:int -> init:(Types.var * Types.value) list -> Message.t list -> t
(** @raise Invalid_argument on the same conditions. *)

val nthreads : t -> int
val total : t -> int
(** Total number of relevant events. *)

val thread_count : t -> Types.tid -> int
val message : t -> Types.tid -> int -> Message.t
(** [message c i k] is the [k]-th (1-based) relevant event of thread [i].
    @raise Invalid_argument if out of range. *)

val messages : t -> Message.t list
(** All messages, by thread then index. *)

val init_state : t -> Pastltl.State.t
val variables : t -> Types.var list
(** Variables updated by some relevant event or present in the initial
    state; sorted. *)

(** {1 The causal order} *)

val precedes : t -> Message.t -> Message.t -> bool
(** [e ⊳ e'] via Theorem 3: [V(e)\[tid e\] <= V(e')\[tid e\]] for distinct
    events. *)

val concurrent : t -> Message.t -> Message.t -> bool

(** {1 Consistent cuts}

    A cut is an [int array] giving, per thread, how many relevant events
    have been consumed; it is {e consistent} when it is downward closed
    under [⊳]. Consistent cuts are the nodes of the computation lattice. *)

val bottom : t -> int array
(** The all-zero cut (initial state). *)

val top : t -> int array
(** The cut containing every relevant event. *)

val is_consistent : t -> int array -> bool
(** @raise Invalid_argument on a malformed cut (wrong length or counts
    out of range). *)

val enabled : t -> int array -> (Types.tid * Message.t) list
(** Events that can extend the cut by one: thread [i]'s next event [e]
    with [V(e)\[j\] <= cut\[j\]] for all [j ≠ i]. On a consistent cut the
    extended cuts are exactly the consistent successors. *)

val apply : Pastltl.State.t -> Message.t -> Pastltl.State.t
(** State update of one relevant event. *)

val state_of_cut : t -> int array -> Pastltl.State.t
(** The global state a cut denotes; well-defined because writes to one
    variable are totally ordered by [⊳]. Computed from scratch in
    O(|cut| · n); the analyzer instead updates states incrementally. *)

val pp : Format.formatter -> t -> unit
