open Trace

type t = {
  nthreads : int;
  by_thread : Message.t array array;  (* [i].(k) is the (k+1)-th event of thread i *)
  init : Pastltl.State.t;
}

let group ~nthreads messages =
  let buckets = Array.make nthreads [] in
  List.iter
    (fun (m : Message.t) ->
      if m.tid < 0 || m.tid >= nthreads then
        invalid_arg "Computation: message thread id out of range";
      buckets.(m.tid) <- m :: buckets.(m.tid))
    messages;
  Array.map
    (fun ms ->
      Array.of_list (List.sort (fun a b -> compare (Message.seq a) (Message.seq b)) ms))
    buckets

let validate by_thread =
  let problem = ref None in
  Array.iteri
    (fun i ms ->
      Array.iteri
        (fun k m ->
          if Message.seq m <> k + 1 && !problem = None then
            problem :=
              Some
                (Printf.sprintf
                   "thread %d: expected relevant event #%d, got one with index %d" i
                   (k + 1) (Message.seq m)))
        ms)
    by_thread;
  !problem

let of_messages ~nthreads ~init messages =
  if nthreads <= 0 then invalid_arg "Computation: nthreads must be positive";
  let by_thread = group ~nthreads messages in
  match validate by_thread with
  | Some msg -> Error msg
  | None -> Ok { nthreads; by_thread; init = Pastltl.State.of_list init }

let of_messages_exn ~nthreads ~init messages =
  match of_messages ~nthreads ~init messages with
  | Ok c -> c
  | Error msg -> invalid_arg ("Computation.of_messages: " ^ msg)

let nthreads c = c.nthreads
let total c = Array.fold_left (fun n ms -> n + Array.length ms) 0 c.by_thread
let thread_count c i = Array.length c.by_thread.(i)

let message c i k =
  if i < 0 || i >= c.nthreads then invalid_arg "Computation.message: bad thread";
  if k < 1 || k > Array.length c.by_thread.(i) then
    invalid_arg "Computation.message: index out of range";
  c.by_thread.(i).(k - 1)

let messages c =
  Array.to_list c.by_thread |> List.concat_map Array.to_list

let init_state c = c.init

let variables c =
  let module Sset = Set.Make (String) in
  let s =
    List.fold_left (fun s (x, _) -> Sset.add x s) Sset.empty
      (Pastltl.State.to_list c.init)
  in
  let s = List.fold_left (fun s (m : Message.t) -> Sset.add m.var s) s (messages c) in
  Sset.elements s

let precedes _c = Message.causally_precedes
let concurrent _c = Message.concurrent

let bottom c = Array.make c.nthreads 0
let top c = Array.map Array.length c.by_thread

let check_cut c cut =
  if Array.length cut <> c.nthreads then invalid_arg "Computation: cut of wrong dimension";
  Array.iteri
    (fun i k ->
      if k < 0 || k > Array.length c.by_thread.(i) then
        invalid_arg "Computation: cut count out of range")
    cut

let is_consistent c cut =
  check_cut c cut;
  (* Downward closure: for every included event, its MVC must lie within
     the cut. It suffices to check each thread's last included event. *)
  let ok = ref true in
  for i = 0 to c.nthreads - 1 do
    if cut.(i) > 0 then begin
      let m = c.by_thread.(i).(cut.(i) - 1) in
      for j = 0 to c.nthreads - 1 do
        if Vclock.get m.mvc j > cut.(j) then ok := false
      done
    end
  done;
  !ok

let enabled c cut =
  check_cut c cut;
  let out = ref [] in
  for i = c.nthreads - 1 downto 0 do
    if cut.(i) < Array.length c.by_thread.(i) then begin
      let m = c.by_thread.(i).(cut.(i)) in
      assert (Vclock.get m.mvc i = cut.(i) + 1);
      let fits = ref true in
      for j = 0 to c.nthreads - 1 do
        if j <> i && Vclock.get m.mvc j > cut.(j) then fits := false
      done;
      if !fits then out := (i, m) :: !out
    end
  done;
  !out

let apply state (m : Message.t) = Pastltl.State.set state m.var m.value

let state_of_cut c cut =
  check_cut c cut;
  (* Final value of x = write of x with the causally greatest MVC among
     the cut's events; writes of one variable are totally ordered. *)
  let latest = Hashtbl.create 8 in
  for i = 0 to c.nthreads - 1 do
    for k = 0 to cut.(i) - 1 do
      let m = c.by_thread.(i).(k) in
      match Hashtbl.find_opt latest m.Message.var with
      | None -> Hashtbl.replace latest m.Message.var m
      | Some current ->
          if Message.causally_precedes current m then Hashtbl.replace latest m.Message.var m
    done
  done;
  Hashtbl.fold (fun x (m : Message.t) st -> Pastltl.State.set st x m.value) latest c.init

let pp ppf c =
  Format.fprintf ppf "@[<v>computation (%d threads, %d relevant events)@," c.nthreads
    (total c);
  Array.iteri
    (fun i ms ->
      Format.fprintf ppf "  %a:" Types.pp_tid i;
      Array.iter (fun m -> Format.fprintf ppf " %a" Message.pp m) ms;
      Format.pp_print_cut ppf ())
    c.by_thread;
  Format.fprintf ppf "  init %a@]" Pastltl.State.pp c.init
