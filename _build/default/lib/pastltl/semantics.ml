let eval formula trace =
  let n = Array.length trace in
  if n = 0 then invalid_arg "Semantics.eval: empty trace";
  let rec table f =
    match f with
    | Formula.True -> Array.make n true
    | Formula.False -> Array.make n false
    | Formula.Atom p -> Array.map (Predicate.holds p) trace
    | Formula.Not g -> Array.map not (table g)
    | Formula.And (g, h) -> Array.map2 ( && ) (table g) (table h)
    | Formula.Or (g, h) -> Array.map2 ( || ) (table g) (table h)
    | Formula.Implies (g, h) -> Array.map2 (fun a b -> (not a) || b) (table g) (table h)
    | Formula.Prev g ->
        let tg = table g in
        Array.init n (fun t -> if t = 0 then tg.(0) else tg.(t - 1))
    | Formula.Once g ->
        let tg = table g in
        let out = Array.make n false in
        Array.iteri (fun t v -> out.(t) <- v || (t > 0 && out.(t - 1))) tg;
        out
    | Formula.Historically g ->
        let tg = table g in
        let out = Array.make n false in
        Array.iteri (fun t v -> out.(t) <- v && (t = 0 || out.(t - 1))) tg;
        out
    | Formula.Since (g, h) ->
        let tg = table g and th = table h in
        let out = Array.make n false in
        for t = 0 to n - 1 do
          out.(t) <- th.(t) || (t > 0 && tg.(t) && out.(t - 1))
        done;
        out
    | Formula.Interval (g, h) ->
        let tg = table g and th = table h in
        let out = Array.make n false in
        for t = 0 to n - 1 do
          out.(t) <- (not th.(t)) && (tg.(t) || (t > 0 && out.(t - 1)))
        done;
        out
    | Formula.Start g ->
        let tg = table g in
        Array.init n (fun t -> if t = 0 then false else tg.(t) && not tg.(t - 1))
    | Formula.End g ->
        let tg = table g in
        Array.init n (fun t -> if t = 0 then false else (not tg.(t)) && tg.(t - 1))
  in
  table formula

let holds_at f trace t =
  let values = eval f trace in
  if t < 0 || t >= Array.length values then invalid_arg "Semantics.holds_at: bad index";
  values.(t)

let first_violation f states =
  match states with
  | [] -> None
  | _ ->
      let values = eval f (Array.of_list states) in
      let rec find t = if t >= Array.length values then None
        else if not values.(t) then Some t else find (t + 1)
      in
      find 0
