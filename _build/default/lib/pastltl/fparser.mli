(** Parser for the specification language's concrete syntax.

    Grammar:
    {v
    formula  ::= since ("==>"  formula)?          right-associative
    since    ::= or ("since" or)?
    or       ::= and ("or" and)*
    and      ::= unary ("and" unary)*
    unary    ::= ("!"|"prev"|"once"|"always"|"start"|"end") unary | atom
    atom     ::= "true" | "false"
               | "[" formula "," formula ")"      the interval operator
               | "(" formula ")"
               | predicate
    predicate::= aexp ("=="|"!="|"<"|"<="|">"|">=") aexp
    aexp     ::= term (("+"|"-") term)*
    term     ::= factor "*" factor | factor
    factor   ::= int | ident | "-" factor | "(" aexp ")"
    v}

    A leading ["("] is ambiguous between a parenthesized formula and a
    parenthesized arithmetic expression; the parser backtracks. *)

exception Error of string

val parse : string -> Formula.t
(** @raise Error on malformed input. *)

val roundtrip : Formula.t -> Formula.t
(** [parse (Formula.to_string f)] — used by tests. *)
