open Trace

module Smap = Map.Make (String)

type t = Types.value Smap.t

let empty = Smap.empty
let of_list l = List.fold_left (fun m (x, v) -> Smap.add x v m) Smap.empty l
let to_list m = Smap.bindings m
let get m x = match Smap.find_opt x m with Some v -> v | None -> 0
let set m x v = Smap.add x v m
let equal = Smap.equal Int.equal
let compare = Smap.compare Int.compare
let hash m = Hashtbl.hash (to_list m)

let pp ppf m =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (x, v) -> Format.fprintf ppf "%s=%d" x v))
    (to_list m)

let pp_values ~vars ppf m =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       (fun ppf x -> Format.pp_print_int ppf (get m x)))
    vars
