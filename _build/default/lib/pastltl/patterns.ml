let absence p = Formula.Historically (Formula.Not p)
let invariant p = p
let existence_before ~trigger p = Formula.Implies (trigger, Formula.Once p)
let precedence ~cause ~effect = Formula.Implies (effect, Formula.Once cause)

let interval_since ~trigger ~opened ~closed =
  Formula.Implies (trigger, Formula.Interval (opened, closed))

let response_guard ~request ~forbidden =
  Formula.Implies (Formula.Once request, Formula.Since (Formula.Not forbidden, request))

let mutual_exclusion p q = Formula.Not (Formula.And (p, q))

let nonzero v = Formula.cmp Predicate.Ne (Predicate.Var v) (Predicate.Const 0)

let non_decreasing v =
  Formula.Implies
    ( Formula.Once (Formula.cmp Predicate.Gt (Predicate.Var v) (Predicate.Const 0)),
      Formula.Not (Formula.cmp Predicate.Eq (Predicate.Var v) (Predicate.Const 0)) )

let rising v = Formula.Start (nonzero v)
