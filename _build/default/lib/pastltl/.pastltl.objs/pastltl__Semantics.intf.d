lib/pastltl/semantics.mli: Formula State
