lib/pastltl/patterns.mli: Formula Trace
