lib/pastltl/fparser.ml: Formula List Predicate Printf String
