lib/pastltl/formula.mli: Format Predicate Trace Types
