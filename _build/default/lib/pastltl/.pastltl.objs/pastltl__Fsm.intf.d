lib/pastltl/fsm.mli: Format Formula Predicate State
