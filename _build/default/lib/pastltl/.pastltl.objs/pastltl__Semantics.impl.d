lib/pastltl/semantics.ml: Array Formula Predicate
