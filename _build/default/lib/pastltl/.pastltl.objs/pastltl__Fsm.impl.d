lib/pastltl/fsm.ml: Array Format Formula Hashtbl List Monitor Predicate Queue
