lib/pastltl/predicate.ml: Format Set State Stdlib String Trace Types
