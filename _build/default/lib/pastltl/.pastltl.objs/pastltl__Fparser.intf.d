lib/pastltl/fparser.mli: Formula
