lib/pastltl/predicate.mli: Format State Trace Types
