lib/pastltl/state.mli: Format Trace Types
