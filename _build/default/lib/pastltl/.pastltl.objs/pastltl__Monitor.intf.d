lib/pastltl/monitor.mli: Format Formula Predicate State
