lib/pastltl/monitor.ml: Array Format Formula Hashtbl List Predicate Stdlib String
