lib/pastltl/state.ml: Format Hashtbl Int List Map String Trace Types
