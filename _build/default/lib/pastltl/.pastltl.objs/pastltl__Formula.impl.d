lib/pastltl/formula.ml: Format List Predicate Set Stdlib String
