lib/pastltl/patterns.ml: Formula Predicate
