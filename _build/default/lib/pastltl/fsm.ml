type t = {
  formula : Formula.t;
  atoms : Predicate.t array;
  initial : int array;  (* letter -> state id *)
  next : int array array;  (* state id -> letter -> state id *)
  verdicts : bool array;
}

let formula t = t.formula
let atoms t = Array.to_list t.atoms
let state_count t = Array.length t.verdicts
let alphabet_size t = 1 lsl Array.length t.atoms

let collect_atoms f =
  let seen = ref [] in
  List.iter
    (fun sub ->
      match sub with
      | Formula.Atom p -> if not (List.exists (Predicate.equal p) !seen) then seen := p :: !seen
      | _ -> ())
    (Formula.subformulas f);
  Array.of_list (List.rev !seen)

let oracle atoms letter p =
  let rec index i =
    if i >= Array.length atoms then assert false
    else if Predicate.equal atoms.(i) p then i
    else index (i + 1)
  in
  letter land (1 lsl index 0) <> 0

let synthesize ?(max_states = 4096) f =
  let atoms = collect_atoms f in
  if Array.length atoms > 20 then
    invalid_arg "Fsm.synthesize: too many distinct atoms (max 20)";
  let nletters = 1 lsl Array.length atoms in
  let compiled = Monitor.compile f in
  let ids : (Monitor.state, int) Hashtbl.t = Hashtbl.create 64 in
  let rev_states = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern mstate =
    match Hashtbl.find_opt ids mstate with
    | Some id -> id
    | None ->
        let id = !count in
        incr count;
        if !count > max_states then invalid_arg "Fsm.synthesize: state budget exceeded";
        Hashtbl.replace ids mstate id;
        rev_states := mstate :: !rev_states;
        Queue.add (id, mstate) queue;
        id
  in
  let initial =
    Array.init nletters (fun letter ->
        intern (Monitor.init_with compiled ~atom:(oracle atoms letter)))
  in
  let transitions : (int * int array) list ref = ref [] in
  while not (Queue.is_empty queue) do
    let id, mstate = Queue.pop queue in
    let row =
      Array.init nletters (fun letter ->
          intern (Monitor.step_with compiled mstate ~atom:(oracle atoms letter)))
    in
    transitions := (id, row) :: !transitions
  done;
  let n = !count in
  let next = Array.make n [||] in
  List.iter (fun (id, row) -> next.(id) <- row) !transitions;
  let states = Array.of_list (List.rev !rev_states) in
  let verdicts = Array.map (Monitor.verdict compiled) states in
  { formula = f; atoms; initial; next; verdicts }

let valuation t global =
  let letter = ref 0 in
  Array.iteri
    (fun i p -> if Predicate.holds p global then letter := !letter lor (1 lsl i))
    t.atoms;
  !letter

let initial t letter =
  if letter < 0 || letter >= alphabet_size t then invalid_arg "Fsm.initial: bad letter";
  t.initial.(letter)

let next t state letter =
  if state < 0 || state >= state_count t then invalid_arg "Fsm.next: bad state";
  if letter < 0 || letter >= alphabet_size t then invalid_arg "Fsm.next: bad letter";
  t.next.(state).(letter)

let verdict t state =
  if state < 0 || state >= state_count t then invalid_arg "Fsm.verdict: bad state";
  t.verdicts.(state)

let run t trace =
  match trace with
  | [] -> []
  | s0 :: rest ->
      let state = ref (initial t (valuation t s0)) in
      let out = ref [ verdict t !state ] in
      List.iter
        (fun s ->
          state := next t !state (valuation t s);
          out := verdict t !state :: !out)
        rest;
      List.rev !out

let minimize t =
  let n = state_count t in
  let nletters = alphabet_size t in
  (* Moore partition refinement: start from the verdict partition. *)
  let block = Array.init n (fun i -> if t.verdicts.(i) then 1 else 0) in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Signature of a state: its block plus the blocks of its successors. *)
    let signatures = Hashtbl.create n in
    let fresh = ref 0 in
    let new_block = Array.make n 0 in
    for s = 0 to n - 1 do
      let signature = (block.(s), Array.to_list (Array.map (fun d -> block.(d)) t.next.(s))) in
      let b =
        match Hashtbl.find_opt signatures signature with
        | Some b -> b
        | None ->
            let b = !fresh in
            incr fresh;
            Hashtbl.replace signatures signature b;
            b
      in
      new_block.(s) <- b
    done;
    if new_block <> block then begin
      Array.blit new_block 0 block 0 n;
      changed := true
    end
  done;
  let nblocks = Array.fold_left (fun acc b -> max acc (b + 1)) 0 block in
  let next = Array.make nblocks [||] in
  let verdicts = Array.make nblocks false in
  for s = 0 to n - 1 do
    let b = block.(s) in
    if next.(b) = [||] then begin
      next.(b) <- Array.init nletters (fun letter -> block.(t.next.(s).(letter)));
      verdicts.(b) <- t.verdicts.(s)
    end
  done;
  let initial = Array.map (fun s -> block.(s)) t.initial in
  { t with initial; next; verdicts }

let pp ppf t =
  Format.fprintf ppf "@[<v>FSM for %a: %d states, %d letters (atoms: %a)@," Formula.pp
    t.formula (state_count t) (alphabet_size t)
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Predicate.pp)
    (atoms t);
  Array.iteri
    (fun s row ->
      Format.fprintf ppf "  %c%d ->" (if t.verdicts.(s) then '+' else '-') s;
      Array.iter (fun d -> Format.fprintf ppf " %d" d) row;
      Format.pp_print_cut ppf ())
    t.next;
  Format.fprintf ppf "@]"
