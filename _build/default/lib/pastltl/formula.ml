
type t =
  | True
  | False
  | Atom of Predicate.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Prev of t
  | Once of t
  | Historically of t
  | Since of t * t
  | Interval of t * t
  | Start of t
  | End of t

let atom p = Atom p
let cmp c a b = Atom (Predicate.make c a b)

module Sset = Set.Make (String)

let rec vars_set = function
  | True | False -> Sset.empty
  | Atom p -> Sset.of_list (Predicate.vars p)
  | Not f | Prev f | Once f | Historically f | Start f | End f -> vars_set f
  | And (f, g) | Or (f, g) | Implies (f, g) | Since (f, g) | Interval (f, g) ->
      Sset.union (vars_set f) (vars_set g)

let vars f = Sset.elements (vars_set f)

let rec size = function
  | True | False | Atom _ -> 1
  | Not f | Prev f | Once f | Historically f | Start f | End f -> 1 + size f
  | And (f, g) | Or (f, g) | Implies (f, g) | Since (f, g) | Interval (f, g) ->
      1 + size f + size g

let subformulas f =
  let seen = ref [] in
  let add f = if not (List.mem f !seen) then seen := f :: !seen in
  let rec go f =
    (match f with
    | True | False | Atom _ -> ()
    | Not g | Prev g | Once g | Historically g | Start g | End g -> go g
    | And (g, h) | Or (g, h) | Implies (g, h) | Since (g, h) | Interval (g, h) ->
        go g;
        go h);
    add f
  in
  go f;
  List.rev !seen

let equal (a : t) (b : t) = a = b
let compare = Stdlib.compare

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom p -> Predicate.pp ppf p
  | Not f -> Format.fprintf ppf "!%a" pp_atom f
  | And (f, g) -> Format.fprintf ppf "%a and %a" pp_atom f pp_atom g
  | Or (f, g) -> Format.fprintf ppf "%a or %a" pp_atom f pp_atom g
  | Implies (f, g) -> Format.fprintf ppf "%a ==> %a" pp_atom f pp_atom g
  | Prev f -> Format.fprintf ppf "prev %a" pp_atom f
  | Once f -> Format.fprintf ppf "once %a" pp_atom f
  | Historically f -> Format.fprintf ppf "always %a" pp_atom f
  | Since (f, g) -> Format.fprintf ppf "%a since %a" pp_atom f pp_atom g
  | Interval (f, g) -> Format.fprintf ppf "[%a, %a)" pp f pp g
  | Start f -> Format.fprintf ppf "start %a" pp_atom f
  | End f -> Format.fprintf ppf "end %a" pp_atom f

and pp_atom ppf f =
  match f with
  | True | False | Atom _ | Interval _ -> pp ppf f
  | _ -> Format.fprintf ppf "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f

let veq x n = cmp Predicate.Eq (Predicate.Var x) (Predicate.Const n)

let landing_spec =
  Implies (Start (veq "landing" 1), Interval (veq "approved" 1, veq "radio" 0))

let xyz_spec =
  Implies
    ( cmp Predicate.Gt (Predicate.Var "x") (Predicate.Const 0),
      Interval (veq "y" 0, cmp Predicate.Gt (Predicate.Var "y") (Predicate.Var "z")) )
