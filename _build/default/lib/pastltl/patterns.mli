(** Common safety-specification patterns, pre-encoded in past-time LTL.

    These are the past-time renderings of the classic specification
    patterns (Dwyer et al.) restricted to safety — the class the paper's
    predictive analysis targets. Each takes atomic formulas (usually
    {!Formula.Atom}s) and returns a formula to be checked at every state
    of every run.

    The paper's own examples are instances: Example 1 is
    [precedence_chain ~event:(start landing) ~first:approved
    ~blocker:radio_down], i.e. the {!interval_since} pattern; Example 2
    guards an {!interval_since} with a state predicate. *)

val absence : Formula.t -> Formula.t
(** [absence p]: [p] never holds (up to now): [always !p]. *)

val invariant : Formula.t -> Formula.t
(** [invariant p]: [p] holds at every state — [p] itself, checked at
    every state by the analyzer. *)

val existence_before : trigger:Formula.t -> Formula.t -> Formula.t
(** [existence_before ~trigger p]: whenever [trigger] holds, [p] has held
    at some point (possibly now): [trigger ==> once p]. *)

val precedence : cause:Formula.t -> effect:Formula.t -> Formula.t
(** [precedence ~cause ~effect]: [effect] cannot hold unless [cause] held
    before or simultaneously: [effect ==> once cause]. *)

val interval_since : trigger:Formula.t -> opened:Formula.t -> closed:Formula.t -> Formula.t
(** [interval_since ~trigger ~opened ~closed]: whenever [trigger] holds,
    [opened] held at some point and [closed] has not held since:
    [trigger ==> \[opened, closed)] — the paper's operator. *)

val response_guard : request:Formula.t -> forbidden:Formula.t -> Formula.t
(** [response_guard ~request ~forbidden]: since the latest [request],
    [forbidden] has not occurred: [once request ==> !forbidden since
    request ...], rendered as [(start request or !forbidden) holds
    whenever a request is pending] — encoded with Since:
    [once request ==> ((!forbidden) since request)]. *)

val mutual_exclusion : Formula.t -> Formula.t -> Formula.t
(** Both never hold together: [always !(p and q)] at every state is
    [!(p and q)]. *)

val non_decreasing : Trace.Types.var -> Formula.t
(** The variable never decreases between consecutive states — rendered
    with one auxiliary comparison per step is impossible in pure ptLTL
    over predicates, so this uses the weaker (and still useful) form
    "once positive, never zero again": [once (v > 0) ==> !(v == 0)]. *)

val rising : Trace.Types.var -> Formula.t
(** [start (v != 0)]: the variable just became nonzero — a convenient
    trigger for the patterns above. *)
