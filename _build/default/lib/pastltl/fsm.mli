(** Explicit finite-state-machine synthesis for past-time LTL.

    The paper observes (Section 4) that "if the property to be checked
    can be translated into a finite state machine (FSM) ... then one can
    analyze all the multithreaded runs in parallel, as the computation
    lattice is built", storing one FSM state per lattice cut. Past-time
    LTL always admits such a translation: a monitor state is a vector of
    subformula truth values, so at most [2^|φ|] states exist, and the
    reachable ones are usually a handful.

    Synthesis enumerates the reachable monitor states over the abstract
    alphabet of {e atom valuations} (one bit per distinct predicate), so
    FSM stepping replaces O(|φ|) monitor recomputation with predicate
    evaluation plus one table lookup — the ablation benchmark E11
    measures the difference. *)

type t

val synthesize : ?max_states:int -> Formula.t -> t
(** [max_states] (default [4096]) bounds the reachable-state exploration.
    @raise Invalid_argument if the formula has more than 20 distinct
    atoms (the alphabet would exceed [2^20]) or exploration exceeds
    [max_states]. *)

val formula : t -> Formula.t
val atoms : t -> Predicate.t list
(** Distinct atomic predicates, in bit order (bit [i] of a valuation is
    the truth of atom [i]). *)

val state_count : t -> int
val alphabet_size : t -> int
(** [2^|atoms|]. *)

val valuation : t -> State.t -> int
(** The letter a global state induces. *)

val initial : t -> int -> int
(** [initial fsm letter]: the state entered on the initial global
    state. *)

val next : t -> int -> int -> int
(** [next fsm state letter]. *)

val verdict : t -> int -> bool

val run : t -> State.t list -> bool list
(** Verdicts along a trace (same length). *)

val minimize : t -> t
(** Moore partition refinement over (verdict, transitions); also drops
    unreachable states. The result accepts the same traces. *)

val pp : Format.formatter -> t -> unit
(** Transition table, one line per state. *)
