(** Direct (declarative) semantics of past-time LTL over a finite trace of
    states — the ground truth the synthesized {!Monitor} is tested
    against. Computed bottom-up per subformula in O(|φ|·T). *)

val eval : Formula.t -> State.t array -> bool array
(** [eval f trace] gives [f]'s truth value at every index of [trace].
    @raise Invalid_argument on an empty trace. *)

val holds_at : Formula.t -> State.t array -> int -> bool
(** Truth value at one index.
    @raise Invalid_argument if the index is out of bounds. *)

val first_violation : Formula.t -> State.t list -> int option
(** Index of the first state falsifying [f], if any — the safety-checking
    view: a trace is accepted iff [f] holds at every state. *)
