(** Global states as seen by the observer: a map from the relevant shared
    variables to their values. Each relevant message [⟨x=v, i, V⟩] updates
    one variable; the initial state comes from the program's shared
    declarations (paper, Section 4: "each relevant event contains global
    state update information"). *)

open Trace

type t

val empty : t
val of_list : (Types.var * Types.value) list -> t
val to_list : t -> (Types.var * Types.value) list
(** Sorted by variable name. *)

val get : t -> Types.var -> Types.value
(** Undeclared variables read as [0]. *)

val set : t -> Types.var -> Types.value -> t
(** Persistent update. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
(** Prints as [<x=1, y=0>]. *)

val pp_values : vars:Types.var list -> Format.formatter -> t -> unit
(** Prints only the given variables, as the paper's tuples [<1,1,0>]. *)
