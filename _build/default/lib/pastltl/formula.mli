(** Past-time LTL with the interval operator of the JMPaX specification
    language (paper, Sections 1, 2.3, 4; operators from Havelund & Roşu,
    "Synthesizing monitors for safety properties", TACAS'02).

    A specification is a formula required to hold at {e every} state of
    every multithreaded run; the predictive analyzer reports a violation
    when some consistent run reaches a state falsifying it.

    Initial-state convention (Havelund–Roşu): on the first state [s0],
    [Prev f] evaluates to [f(s0)]; consequently [Start f] and [End f] are
    false at [s0], and [Interval (p, q)] is [p(s0) && not (q(s0))]. *)

open Trace

type t =
  | True
  | False
  | Atom of Predicate.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Prev of t  (** [⊙ f]: [f] held at the previous state *)
  | Once of t  (** [◇· f]: [f] held at some past or present state *)
  | Historically of t  (** [□· f]: [f] held at every past and present state *)
  | Since of t * t
      (** [f S g]: [g] held at some past or present state, and [f] has
          held ever since (strictly after that point) *)
  | Interval of t * t
      (** [\[f, g)]: [f] held at some past or present state and [g] has
          not held since then (inclusive of the [f]-point onward); the
          paper's "(y = 0) has been true in the past, and since then
          (y > z) was always false". Defined by
          [\[f,g) = (f && !g) || (!g && Prev \[f,g))]. *)
  | Start of t  (** [↑ f = f && !(⊙ f)]: [f] just became true *)
  | End of t  (** [↓ f = !f && ⊙ f]: [f] just became false *)

val atom : Predicate.t -> t
val cmp : Predicate.cmp -> Predicate.aexp -> Predicate.aexp -> t

val vars : t -> Types.var list
(** All state variables the formula mentions — the relevant variables
    the instrumentation module extracts (paper, Section 4.1). *)

val size : t -> int
(** Number of syntactic subformulas (with duplicates). *)

val subformulas : t -> t list
(** Bottom-up (children before parents), duplicates removed, the formula
    itself last. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Paper specifications} *)

val landing_spec : t
(** Example 1: "if the plane has {e started} landing, then landing was
    approved and since the approval the radio has never been down":
    [Start(landing == 1) ==> \[approved == 1, radio == 0)]. *)

val xyz_spec : t
(** Example 2: [(x > 0) ==> \[y == 0, y > z)]. *)
