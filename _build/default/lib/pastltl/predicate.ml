open Trace

type aexp =
  | Const of int
  | Var of Types.var
  | Neg of aexp
  | Add of aexp * aexp
  | Sub of aexp * aexp
  | Mul of aexp * aexp

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t = { cmp : cmp; lhs : aexp; rhs : aexp }

let make cmp lhs rhs = { cmp; lhs; rhs }

let rec eval_aexp state = function
  | Const n -> n
  | Var x -> State.get state x
  | Neg a -> -eval_aexp state a
  | Add (a, b) -> eval_aexp state a + eval_aexp state b
  | Sub (a, b) -> eval_aexp state a - eval_aexp state b
  | Mul (a, b) -> eval_aexp state a * eval_aexp state b

let holds { cmp; lhs; rhs } state =
  let a = eval_aexp state lhs and b = eval_aexp state rhs in
  match cmp with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

module Sset = Set.Make (String)

let rec aexp_vars = function
  | Const _ -> Sset.empty
  | Var x -> Sset.singleton x
  | Neg a -> aexp_vars a
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> Sset.union (aexp_vars a) (aexp_vars b)

let vars { lhs; rhs; _ } = Sset.elements (Sset.union (aexp_vars lhs) (aexp_vars rhs))

let equal (a : t) (b : t) = a = b
let compare = Stdlib.compare

let cmp_symbol = function
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp_aexp ppf = function
  | Const n -> Format.pp_print_int ppf n
  | Var x -> Format.pp_print_string ppf x
  | Neg a -> Format.fprintf ppf "-%a" pp_aexp_atom a
  | Add (a, b) -> Format.fprintf ppf "%a + %a" pp_aexp a pp_aexp_atom b
  | Sub (a, b) -> Format.fprintf ppf "%a - %a" pp_aexp a pp_aexp_atom b
  | Mul (a, b) -> Format.fprintf ppf "%a * %a" pp_aexp_atom a pp_aexp_atom b

and pp_aexp_atom ppf = function
  | (Const _ | Var _) as a -> pp_aexp ppf a
  | a -> Format.fprintf ppf "(%a)" pp_aexp a

let pp ppf { cmp; lhs; rhs } =
  Format.fprintf ppf "%a %s %a" pp_aexp lhs (cmp_symbol cmp) pp_aexp rhs

let to_string p = Format.asprintf "%a" pp p
