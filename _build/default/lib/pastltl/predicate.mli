(** Atomic state predicates: comparisons between integer expressions over
    the observed global state, e.g. [x > 0] or [y > z] (paper,
    Section 2.3). *)

open Trace

type aexp =
  | Const of int
  | Var of Types.var
  | Neg of aexp
  | Add of aexp * aexp
  | Sub of aexp * aexp
  | Mul of aexp * aexp

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t = { cmp : cmp; lhs : aexp; rhs : aexp }

val make : cmp -> aexp -> aexp -> t
val eval_aexp : State.t -> aexp -> int
val holds : t -> State.t -> bool

val vars : t -> Types.var list
(** Variables mentioned, sorted, unique — these are the {e relevant}
    variables the instrumentation must watch. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
