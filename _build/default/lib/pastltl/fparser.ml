exception Error of string

type token =
  | TINT of int
  | TIDENT of string
  | TTRUE | TFALSE
  | TAND | TOR | TNOT | TIMPLIES
  | TPREV | TONCE | TALWAYS | TSINCE | TSTART | TEND
  | TEQ | TNE | TLT | TLE | TGT | TGE
  | TPLUS | TMINUS | TSTAR
  | TLPAREN | TRPAREN | TLBRACKET | TCOMMA
  | TEOF

let keywords =
  [ ("true", TTRUE); ("false", TFALSE); ("and", TAND); ("or", TOR); ("not", TNOT);
    ("prev", TPREV); ("once", TONCE); ("always", TALWAYS); ("since", TSINCE);
    ("start", TSTART); ("end", TEND) ]

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done;
      push (TINT (int_of_string (String.sub src start (!i - start))))
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while
        !i < n
        && ((src.[!i] >= 'a' && src.[!i] <= 'z')
           || (src.[!i] >= 'A' && src.[!i] <= 'Z')
           || (src.[!i] >= '0' && src.[!i] <= '9')
           || src.[!i] = '_')
      do incr i done;
      let word = String.sub src start (!i - start) in
      push (match List.assoc_opt word keywords with Some t -> t | None -> TIDENT word)
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let advance2 t = push t; i := !i + 2 in
      let advance1 t = push t; incr i in
      match two with
      | "==" -> if !i + 2 < n && src.[!i + 2] = '>' then begin push TIMPLIES; i := !i + 3 end
                else advance2 TEQ
      | "!=" -> advance2 TNE
      | "<=" -> advance2 TLE
      | ">=" -> advance2 TGE
      | _ -> (
          match c with
          | '<' -> advance1 TLT
          | '>' -> advance1 TGT
          | '!' -> advance1 TNOT
          | '+' -> advance1 TPLUS
          | '-' -> advance1 TMINUS
          | '*' -> advance1 TSTAR
          | '(' -> advance1 TLPAREN
          | ')' -> advance1 TRPAREN
          | '[' -> advance1 TLBRACKET
          | ',' -> advance1 TCOMMA
          | _ -> raise (Error (Printf.sprintf "unexpected character %C" c)))
    end
  done;
  List.rev (TEOF :: !toks)

type st = { mutable toks : token list }

let peek st = match st.toks with [] -> TEOF | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r
let save st = st.toks
let restore st saved = st.toks <- saved
let expect st t what = if peek st = t then advance st else raise (Error ("expected " ^ what))

(* {1 Arithmetic} *)

let rec parse_aexp st =
  let rec chain left =
    match peek st with
    | TPLUS ->
        advance st;
        chain (Predicate.Add (left, parse_term st))
    | TMINUS ->
        advance st;
        chain (Predicate.Sub (left, parse_term st))
    | _ -> left
  in
  chain (parse_term st)

and parse_term st =
  let rec chain left =
    match peek st with
    | TSTAR ->
        advance st;
        chain (Predicate.Mul (left, parse_factor st))
    | _ -> left
  in
  chain (parse_factor st)

and parse_factor st =
  match peek st with
  | TINT n ->
      advance st;
      Predicate.Const n
  | TIDENT x ->
      advance st;
      Predicate.Var x
  | TMINUS ->
      advance st;
      (match parse_factor st with
      | Predicate.Const n -> Predicate.Const (-n)
      | a -> Predicate.Neg a)
  | TLPAREN ->
      advance st;
      let a = parse_aexp st in
      expect st TRPAREN "')'";
      a
  | _ -> raise (Error "expected arithmetic expression")

let parse_predicate st =
  let lhs = parse_aexp st in
  let cmp =
    match peek st with
    | TEQ -> Predicate.Eq
    | TNE -> Predicate.Ne
    | TLT -> Predicate.Lt
    | TLE -> Predicate.Le
    | TGT -> Predicate.Gt
    | TGE -> Predicate.Ge
    | _ -> raise (Error "expected comparison operator")
  in
  advance st;
  let rhs = parse_aexp st in
  Formula.Atom (Predicate.make cmp lhs rhs)

(* {1 Formulas} *)

let rec parse_formula st =
  let left = parse_since st in
  match peek st with
  | TIMPLIES ->
      advance st;
      Formula.Implies (left, parse_formula st)
  | _ -> left

and parse_since st =
  let left = parse_or st in
  match peek st with
  | TSINCE ->
      advance st;
      Formula.Since (left, parse_or st)
  | _ -> left

and parse_or st =
  let rec chain left =
    match peek st with
    | TOR ->
        advance st;
        chain (Formula.Or (left, parse_and st))
    | _ -> left
  in
  chain (parse_and st)

and parse_and st =
  let rec chain left =
    match peek st with
    | TAND ->
        advance st;
        chain (Formula.And (left, parse_unary st))
    | _ -> left
  in
  chain (parse_unary st)

and parse_unary st =
  match peek st with
  | TNOT ->
      advance st;
      Formula.Not (parse_unary st)
  | TPREV ->
      advance st;
      Formula.Prev (parse_unary st)
  | TONCE ->
      advance st;
      Formula.Once (parse_unary st)
  | TALWAYS ->
      advance st;
      Formula.Historically (parse_unary st)
  | TSTART ->
      advance st;
      Formula.Start (parse_unary st)
  | TEND ->
      advance st;
      Formula.End (parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | TTRUE ->
      advance st;
      Formula.True
  | TFALSE ->
      advance st;
      Formula.False
  | TLBRACKET ->
      advance st;
      let f = parse_formula st in
      expect st TCOMMA "','";
      let g = parse_formula st in
      expect st TRPAREN "')' closing interval";
      Formula.Interval (f, g)
  | TLPAREN ->
      (* Ambiguous: "(x + 1) > 0" is a predicate, "(p and q)" a formula.
         Try the predicate reading first, backtrack on failure. *)
      let saved = save st in
      (try parse_predicate st
       with Error _ ->
         restore st saved;
         advance st;
         let f = parse_formula st in
         expect st TRPAREN "')'";
         f)
  | TINT _ | TIDENT _ | TMINUS -> parse_predicate st
  | _ -> raise (Error "expected formula")

let parse src =
  let st = { toks = tokenize src } in
  let f = parse_formula st in
  if peek st <> TEOF then raise (Error "trailing input");
  f

let roundtrip f = parse (Formula.to_string f)
