(** The JPaX / Java-MaC style baseline: a purely {e observational}
    monitor that checks the specification along the single observed
    interleaving, with no causal reasoning (paper, Section 1).

    Exists to quantify the paper's motivating claim: errors that only
    manifest under rare schedules are essentially invisible to this
    monitor, while the predictive analyzer sees them in the causal
    abstraction of any successful run. *)

open Trace

type t

val create : spec:Pastltl.Formula.t -> init:(Types.var * Types.value) list -> t
(** An online monitor positioned at the initial state. *)

val feed : t -> Message.t -> unit
(** Consume one state-update message {e in arrival order}. *)

val ok : t -> bool
(** False once any prefix state falsified the specification (latching). *)

val violation_index : t -> int option
(** Index of the first bad state (0 = initial state), if any. *)

val states_seen : t -> int

val check_messages :
  spec:Pastltl.Formula.t ->
  init:(Types.var * Types.value) list ->
  Message.t list ->
  bool
(** One-shot convenience: [true] iff no violation along the sequence. *)
