open Trace

type t = {
  monitor : Pastltl.Monitor.compiled;
  mutable state : Pastltl.State.t;
  mutable mstate : Pastltl.Monitor.state;
  mutable seen : int;
  mutable first_violation : int option;
}

let create ~spec ~init =
  let monitor = Pastltl.Monitor.compile spec in
  let state = Pastltl.State.of_list init in
  let mstate = Pastltl.Monitor.init monitor state in
  let first_violation =
    if Pastltl.Monitor.verdict monitor mstate then None else Some 0
  in
  { monitor; state; mstate; seen = 1; first_violation }

let feed t (m : Message.t) =
  t.state <- Pastltl.State.set t.state m.var m.value;
  t.mstate <- Pastltl.Monitor.step t.monitor t.mstate t.state;
  if t.first_violation = None && not (Pastltl.Monitor.verdict t.monitor t.mstate) then
    t.first_violation <- Some t.seen;
  t.seen <- t.seen + 1

let ok t = t.first_violation = None
let violation_index t = t.first_violation
let states_seen t = t.seen

let check_messages ~spec ~init messages =
  let t = create ~spec ~init in
  List.iter (feed t) messages;
  ok t
