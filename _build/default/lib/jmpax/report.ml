let lattice_figure comp =
  let lattice = Observer.Lattice.build comp in
  Format.asprintf "%a" Observer.Lattice.pp lattice

let example_report ~spec ~program ~script =
  let config =
    Config.default () |> Config.with_sched (Tml.Sched.of_script script)
  in
  let output = Pipeline.check ~config ~spec program in
  let vars = output.Pipeline.relevant_vars in
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "%a@." Pipeline.pp_output output;
  Format.fprintf ppf "@.observed messages:@.";
  List.iteri
    (fun i m -> Format.fprintf ppf "  %d: %a@." (i + 1) Trace.Message.pp m)
    output.Pipeline.run.Tml.Vm.messages;
  let lattice = Observer.Lattice.build output.Pipeline.computation in
  Format.fprintf ppf "@.%a@." Observer.Lattice.pp lattice;
  let ce = Predict.Counterexample.check ~spec output.Pipeline.computation in
  Format.fprintf ppf "@.%a@." Predict.Counterexample.pp_report ce;
  List.iter
    (fun c ->
      Format.fprintf ppf "%a@." (Predict.Counterexample.pp_counterexample ~vars) c)
    ce.Predict.Counterexample.violating;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let detection_table ~spec ~program ~seeds =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "seed | observed-run (JPaX) | predictive (JMPaX)@.";
  Format.fprintf ppf "-----+---------------------+-------------------@.";
  let jpax_hits = ref 0 and jmpax_hits = ref 0 in
  List.iter
    (fun seed ->
      let config = Config.default () |> Config.with_seed seed in
      let output = Pipeline.check ~config ~spec program in
      let jpax = not output.Pipeline.observed_ok in
      let jmpax = Pipeline.predicted_violation output in
      if jpax then incr jpax_hits;
      if jmpax then incr jmpax_hits;
      Format.fprintf ppf "%4d | %19s | %s@." seed
        (if jpax then "violation" else "missed")
        (if jmpax then "violation" else "missed"))
    seeds;
  let n = List.length seeds in
  Format.fprintf ppf "detection rate: JPaX %d/%d, JMPaX %d/%d@." !jpax_hits n !jmpax_hits n;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
