lib/jmpax/jpax.ml: List Message Pastltl Trace
