lib/jmpax/report.mli: Observer Pastltl Tml
