lib/jmpax/config.mli: Tml
