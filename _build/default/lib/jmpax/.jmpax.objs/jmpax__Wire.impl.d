lib/jmpax/wire.ml: Buffer Char Fun List Message Printf String Trace Types Vclock
