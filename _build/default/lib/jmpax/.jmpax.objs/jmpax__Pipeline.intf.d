lib/jmpax/pipeline.mli: Config Format Message Observer Pastltl Predict Tml Trace Types
