lib/jmpax/jpax.mli: Message Pastltl Trace Types
