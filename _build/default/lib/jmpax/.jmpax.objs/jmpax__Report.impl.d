lib/jmpax/report.ml: Buffer Config Format List Observer Pipeline Predict Tml Trace
