lib/jmpax/pipeline.ml: Config Format List Message Mvc Observer Option Pastltl Predict Printf String Tml Trace Types
