lib/jmpax/wire.mli: Message Trace Types
