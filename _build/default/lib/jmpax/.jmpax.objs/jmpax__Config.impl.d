lib/jmpax/config.ml: Tml
