open Trace

type header = {
  nthreads : int;
  init : (Types.var * Types.value) list;
}

let magic = "jmpax-trace 1"

(* Percent-encoding for variable names: '%', whitespace and control
   characters are escaped, everything else passes through. *)
let encode_var x =
  let buf = Buffer.create (String.length x) in
  String.iter
    (fun c ->
      if c = '%' || c <= ' ' || c = '\x7f' then
        Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      else Buffer.add_char buf c)
    x;
  Buffer.contents buf

let decode_var s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] = '%' then
      if i + 2 < n then
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code ->
            Buffer.add_char buf (Char.chr code);
            go (i + 3)
        | None -> Error (Printf.sprintf "bad escape in variable name %S" s)
      else Error (Printf.sprintf "truncated escape in variable name %S" s)
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let encode_message (m : Message.t) =
  Printf.sprintf "msg %d %s %d %s" m.tid (encode_var m.var) m.value
    (Vclock.to_string m.mvc)

let decode_message line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "msg"; tid; var; value; clock ] -> (
      match (int_of_string_opt tid, decode_var var, int_of_string_opt value) with
      | Some tid, Ok var, Some value -> (
          match Vclock.of_string clock with
          | mvc -> (
              match Message.make ~eid:0 ~tid ~var ~value ~mvc with
              | m -> Ok m
              | exception _ -> Error (Printf.sprintf "inconsistent message %S" line))
          | exception Invalid_argument e -> Error e)
      | _ -> Error (Printf.sprintf "malformed msg line %S" line))
  | _ -> Error (Printf.sprintf "expected a msg line, got %S" line)

let encode header messages =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "threads %d\n" header.nthreads);
  List.iter
    (fun (x, v) -> Buffer.add_string buf (Printf.sprintf "init %s %d\n" (encode_var x) v))
    header.init;
  List.iter
    (fun m ->
      Buffer.add_string buf (encode_message m);
      Buffer.add_char buf '\n')
    messages;
  Buffer.contents buf

let decode text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> Error "empty trace"
  | first :: rest ->
      if first <> magic then Error (Printf.sprintf "bad magic %S" first)
      else begin
        let nthreads = ref None in
        let rev_init = ref [] in
        let rev_msgs = ref [] in
        let problem = ref None in
        List.iter
          (fun line ->
            if !problem = None then
              match String.split_on_char ' ' line with
              | [ "threads"; n ] -> (
                  match int_of_string_opt n with
                  | Some n when n > 0 -> nthreads := Some n
                  | _ -> problem := Some (Printf.sprintf "bad thread count %S" line))
              | [ "init"; x; v ] -> (
                  match (decode_var x, int_of_string_opt v) with
                  | Ok x, Some v -> rev_init := (x, v) :: !rev_init
                  | Error e, _ -> problem := Some e
                  | _, None -> problem := Some (Printf.sprintf "bad init line %S" line))
              | "msg" :: _ -> (
                  match decode_message line with
                  | Ok m -> rev_msgs := m :: !rev_msgs
                  | Error e -> problem := Some e)
              | _ -> problem := Some (Printf.sprintf "unrecognized line %S" line))
          rest;
        match (!problem, !nthreads) with
        | Some e, _ -> Error e
        | None, None -> Error "missing 'threads' line"
        | None, Some nthreads ->
            (* Restore observed-order event ids. *)
            let msgs = List.rev !rev_msgs in
            let msgs =
              List.mapi (fun i (m : Message.t) -> { m with Message.eid = i }) msgs
            in
            Ok ({ nthreads; init = List.rev !rev_init }, msgs)
      end

let write_file path header messages =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (encode header messages))

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> decode text
  | exception Sys_error e -> Error e
