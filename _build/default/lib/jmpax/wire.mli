(** Wire format for observer messages.

    JMPaX ships [⟨e, i, V⟩] messages over a socket to an external
    observer process (paper, Fig. 4). This module fixes a line-oriented
    text encoding so executions can cross process boundaries here too:
    the instrumented run writes a trace, and `jmpax observe` — or any
    other consumer — analyzes it later or elsewhere, in any delivery
    order.

    Format (one record per line):
    {v
    jmpax-trace 1          -- header: magic and version
    threads <n>
    init <var> <value>     -- zero or more
    msg <tid> <var> <value> (k0,k1,...,kn-1)
    v}

    Variable names are percent-encoded so spaces and newlines cannot
    corrupt framing. *)

open Trace

type header = {
  nthreads : int;
  init : (Types.var * Types.value) list;
}

val encode_message : Message.t -> string
(** One [msg] line, without the newline. *)

val decode_message : string -> (Message.t, string) result

val encode : header -> Message.t list -> string
(** A complete trace document. *)

val decode : string -> (header * Message.t list, string) result
(** Accepts blank lines and [#] comments. *)

val write_file : string -> header -> Message.t list -> unit
val read_file : string -> (header * Message.t list, string) result
(** [Error] on unreadable files as well as malformed content. *)
