(** Liveness-violation prediction (paper, Section 4, last paragraph).

    The idea sketched in the paper: search the computation lattice for
    paths of the form [u·v] where the global state reached by [u] equals
    the state reached by [u·v]; the system could then plausibly repeat
    [v] forever, so check the infinite word [u·v{^ω}] against the
    liveness property (Markey–Schnoebelen: LTL on an ultimately periodic
    word is decidable in polynomial time). *)

open Trace

(** Future-time LTL for liveness specifications. *)
type fformula =
  | FTrue
  | FFalse
  | FAtom of Pastltl.Predicate.t
  | FNot of fformula
  | FAnd of fformula * fformula
  | FOr of fformula * fformula
  | FNext of fformula
  | FEventually of fformula
  | FAlways of fformula
  | FUntil of fformula * fformula

val eval_lasso :
  fformula -> prefix:Pastltl.State.t list -> cycle:Pastltl.State.t list -> bool
(** Whether the infinite word [prefix · cycle{^ω}] satisfies the formula
    at its first position. [prefix] may be empty; [cycle] must not be.
    @raise Invalid_argument on an empty cycle. *)

type lasso = {
  prefix : Message.t list;  (** the events of [u] *)
  cycle : Message.t list;  (** the events of [v], nonempty *)
  prefix_states : Pastltl.State.t list;  (** states along [u], initial first *)
  cycle_states : Pastltl.State.t list;  (** states along [v], excluding the repeat *)
}

val find_lassos : ?max_lassos:int -> Observer.Lattice.t -> lasso list
(** All (capped) pairs of lattice nodes with equal global state connected
    by a path, each yielding one candidate lasso. *)

val check :
  ?max_lassos:int -> spec:fformula -> Observer.Lattice.t -> lasso option
(** First candidate lasso whose [u·v{^ω}] violates the liveness
    specification, if any. *)

val pp_fformula : Format.formatter -> fformula -> unit
val pp_lasso : vars:Types.var list -> Format.formatter -> lasso -> unit
