type violation = {
  cut : int array;
  level : int;
  state : Pastltl.State.t;
  monitor_state : Pastltl.Monitor.state;
}

type stats = {
  levels : int;
  max_frontier_cuts : int;
  max_frontier_entries : int;
  monitor_steps : int;
  cuts_visited : int;
}

type report = {
  spec : Pastltl.Formula.t;
  violations : violation list;
  stats : stats;
}

module Mset = Set.Make (struct
  type t = Pastltl.Monitor.state

  let compare = Pastltl.Monitor.compare_state
end)

type entry = { state : Pastltl.State.t; msets : Mset.t }

let analyze ?(stop_at_first = false) ?(max_violations = 1000) ~spec comp =
  let monitor = Pastltl.Monitor.compile spec in
  let violations = ref [] in
  let n_violations = ref 0 in
  let monitor_steps = ref 0 in
  let max_frontier_cuts = ref 0 in
  let max_frontier_entries = ref 0 in
  let cuts_visited = ref 0 in
  let levels = ref 0 in
  let record_violations cut level entry =
    Mset.iter
      (fun m ->
        if (not (Pastltl.Monitor.verdict monitor m)) && !n_violations < max_violations
        then begin
          incr n_violations;
          violations :=
            { cut = Array.copy cut; level; state = entry.state; monitor_state = m }
            :: !violations
        end)
      entry.msets
  in
  (* Frontier for one level: cut (as int list) -> entry. *)
  let init_state = Observer.Computation.init_state comp in
  let m0 = Pastltl.Monitor.init monitor init_state in
  incr monitor_steps;
  let frontier = Hashtbl.create 64 in
  Hashtbl.replace frontier
    (Array.to_list (Observer.Computation.bottom comp))
    { state = init_state; msets = Mset.singleton m0 };
  let running = ref true in
  while !running do
    incr levels;
    let cuts = Hashtbl.length frontier in
    max_frontier_cuts := max !max_frontier_cuts cuts;
    cuts_visited := !cuts_visited + cuts;
    let entries =
      Hashtbl.fold (fun _ e acc -> acc + Mset.cardinal e.msets) frontier 0
    in
    max_frontier_entries := max !max_frontier_entries entries;
    let this_level_violated = ref false in
    Hashtbl.iter
      (fun key entry ->
        record_violations (Array.of_list key) (!levels - 1) entry;
        if Mset.exists (fun m -> not (Pastltl.Monitor.verdict monitor m)) entry.msets
        then this_level_violated := true)
      frontier;
    if stop_at_first && !this_level_violated then running := false
    else begin
      (* Expand to the next level. *)
      let next = Hashtbl.create 64 in
      Hashtbl.iter
        (fun key entry ->
          let cut = Array.of_list key in
          List.iter
            (fun (tid, m) ->
              let cut' = Array.copy cut in
              cut'.(tid) <- cut'.(tid) + 1;
              let state' = Observer.Computation.apply entry.state m in
              let stepped =
                Mset.fold
                  (fun ms acc ->
                    incr monitor_steps;
                    Mset.add (Pastltl.Monitor.step monitor ms state') acc)
                  entry.msets Mset.empty
              in
              let key' = Array.to_list cut' in
              match Hashtbl.find_opt next key' with
              | None -> Hashtbl.replace next key' { state = state'; msets = stepped }
              | Some existing ->
                  assert (Pastltl.State.equal existing.state state');
                  Hashtbl.replace next key'
                    { existing with msets = Mset.union existing.msets stepped })
            (Observer.Computation.enabled comp cut))
        frontier;
      if Hashtbl.length next = 0 then running := false
      else begin
        Hashtbl.reset frontier;
        Hashtbl.iter (Hashtbl.replace frontier) next
      end
    end
  done;
  { spec;
    violations = List.rev !violations;
    stats =
      { levels = !levels;
        max_frontier_cuts = !max_frontier_cuts;
        max_frontier_entries = !max_frontier_entries;
        monitor_steps = !monitor_steps;
        cuts_visited = !cuts_visited } }

let violated report = report.violations <> []

let observed_run_verdict ~spec ~init messages =
  let monitor = Pastltl.Monitor.compile spec in
  let state0 = Pastltl.State.of_list init in
  let m0 = Pastltl.Monitor.init monitor state0 in
  let ok = ref (Pastltl.Monitor.verdict monitor m0) in
  let _ =
    List.fold_left
      (fun (state, m) msg ->
        let state' = Observer.Computation.apply state msg in
        let m' = Pastltl.Monitor.step monitor m state' in
        if not (Pastltl.Monitor.verdict monitor m') then ok := false;
        (state', m'))
      (state0, m0) messages
  in
  !ok

let pp_violation ~vars ppf v =
  Format.fprintf ppf "violation at level %d, cut (%s), state %a" v.level
    (String.concat "," (List.map string_of_int (Array.to_list v.cut)))
    (Pastltl.State.pp_values ~vars) v.state

let pp_report ppf r =
  Format.fprintf ppf "@[<v>spec: %a@,%s@,levels=%d max_cuts=%d max_entries=%d \
                      monitor_steps=%d cuts_visited=%d@]"
    Pastltl.Formula.pp r.spec
    (match r.violations with
    | [] -> "no violation predicted"
    | vs -> Printf.sprintf "%d violating (cut, monitor-state) pairs predicted" (List.length vs))
    r.stats.levels r.stats.max_frontier_cuts r.stats.max_frontier_entries
    r.stats.monitor_steps r.stats.cuts_visited
