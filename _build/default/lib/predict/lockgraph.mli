(** Potential-deadlock prediction by lock-order graph (Goodlock style).

    From a recorded execution, adds an edge [l → l'] whenever some thread
    acquires [l'] while holding [l]; a cycle among different threads'
    edges means some schedule can interleave the acquisitions into a
    deadlock, even if the observed run completed. This complements
    {!Analyzer}: the paper's lattice predicts state-property violations,
    the lock graph predicts blocking cycles that produce no state at
    all. *)

open Trace

type edge = { held : string; acquired : string; tid : Types.tid; eid : int }

type report = {
  locks : string list;  (** all locks seen, sorted *)
  edges : edge list;
  cycles : string list list;
      (** each cycle as its lock list (smallest-first rotation), only
          cycles involving at least two distinct threads *)
}

val analyze : Exec.t -> report
(** @raise Invalid_argument on a malformed lock event stream (release of
    a lock not held), which the VM never produces. *)

val deadlock_free : report -> bool
val pp_report : Format.formatter -> report -> unit
