open Trace

type access = {
  eid : int;
  tid : Types.tid;
  var : Types.var;
  is_write : bool;
  vc : Vclock.t;
}

type race = { first : access; second : access }

type report = {
  races : race list;
  racy_vars : Types.var list;
  accesses : int;
}

let detect ?(max_races = 10_000) exec =
  let clocks = Syncclock.create ~nthreads:(Exec.nthreads exec) in
  let by_var : (Types.var, access list ref) Hashtbl.t = Hashtbl.create 16 in
  let races = ref [] in
  let count = ref 0 in
  let accesses = ref 0 in
  let module Sset = Set.Make (String) in
  let racy = ref Sset.empty in
  Array.iter
    (fun (e : Event.t) ->
      match Syncclock.observe clocks e with
      | None -> ()
      | Some vc ->
          incr accesses;
          let x = Option.get (Event.variable e) in
          let this =
            { eid = e.eid; tid = e.tid; var = x; is_write = Event.is_write e; vc }
          in
          let bucket =
            match Hashtbl.find_opt by_var x with
            | Some b -> b
            | None ->
                let b = ref [] in
                Hashtbl.replace by_var x b;
                b
          in
          List.iter
            (fun (prev : access) ->
              if
                (prev.is_write || this.is_write)
                && prev.tid <> this.tid
                && Vclock.concurrent prev.vc this.vc
              then begin
                racy := Sset.add x !racy;
                if !count < max_races then begin
                  incr count;
                  races := { first = prev; second = this } :: !races
                end
              end)
            !bucket;
          bucket := this :: !bucket)
    (Exec.events exec);
  { races = List.rev !races; racy_vars = Sset.elements !racy; accesses = !accesses }

let race_free r = r.racy_vars = []

let pp_access ppf a =
  Format.fprintf ppf "%s of %s by %a at e%d %a"
    (if a.is_write then "write" else "read")
    a.var Types.pp_tid a.tid a.eid Vclock.pp a.vc

let pp_race ppf { first; second } =
  Format.fprintf ppf "race: %a || %a" pp_access first pp_access second

let pp_report ppf r =
  match r.racy_vars with
  | [] -> Format.fprintf ppf "no data races predicted (%d accesses)" r.accesses
  | vars ->
      Format.fprintf ppf "@[<v>%d racy pairs on {%s} (%d accesses)@,%a@]"
        (List.length r.races) (String.concat ", " vars) r.accesses
        (Format.pp_print_list pp_race)
        r.races
