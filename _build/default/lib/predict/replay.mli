(** Counterexample replay: from a predicted violating run back to a
    concrete schedule.

    The analyzer predicts a violating {e relevant-event order}; this
    module drives the instrumented VM so that its emission order matches
    that run, yielding a real execution (and a {!Tml.Sched.script} that
    reproduces it) in which the observed-run monitor itself sees the
    violation — "the user will be given enough information (the entire
    counterexample execution) to understand the error" (paper,
    Section 1), made executable.

    The target fixes only the {e relevant-event} order; the decisive
    freedom is in the irrelevant steps (the paper's landing
    counterexample needs the radio test's {e read} scheduled before the
    radio-off write that the run places before the approval). Replay is
    therefore a depth-first search over schedules, pruning every prefix
    whose emissions diverge from the target. *)

open Trace

type outcome = {
  script : Tml.Sched.script;  (** reproduces the execution exactly *)
  result : Tml.Vm.run_result;
  emitted : Message.t list;  (** relevant events, in the target order *)
}

type failure =
  | Event_mismatch of { expected : Message.t; got : Message.t }
  | Unexpected_event of Message.t
      (** a relevant event emitted after the target run was complete *)
  | Stuck of { remaining : int }  (** no runnable thread can make progress *)
  | Budget_exhausted

val run :
  ?budget:int ->
  relevance:Mvc.Relevance.t ->
  image:Tml.Bytecode.image ->
  Message.t list ->
  (outcome, failure) result
(** [run ~relevance ~image target] searches for a schedule of [image]
    whose relevant events come out in [target]'s (thread, index, var,
    value) order, and runs it to completion. [budget] (default
    [100_000]) caps the total observable steps spent across the whole
    search (each search node replays from the initial state). *)

val replay_counterexample :
  ?budget:int ->
  spec:Pastltl.Formula.t ->
  program:Tml.Ast.program ->
  Counterexample.counterexample ->
  (outcome, failure) result
(** Convenience: instrument the program, replay the counterexample's
    run, and (on success) assert that the observed-run monitor now
    reports the violation. *)

val pp_failure : Format.formatter -> failure -> unit
