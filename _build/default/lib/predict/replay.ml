open Trace

type outcome = {
  script : Tml.Sched.script;
  result : Tml.Vm.run_result;
  emitted : Message.t list;
}

type failure =
  | Event_mismatch of { expected : Message.t; got : Message.t }
  | Unexpected_event of Message.t
  | Stuck of { remaining : int }
  | Budget_exhausted

(* Two messages denote the same program event when thread, per-thread
   index, variable and value agree; clocks may differ because the replay
   interleaves irrelevant accesses differently. *)
let same_event (a : Message.t) (b : Message.t) =
  a.tid = b.tid && Message.seq a = Message.seq b && a.var = b.var && a.value = b.value

exception Found of outcome
exception Out_of_budget

(* The target constrains only the order of RELEVANT events; irrelevant
   steps (reads, internal events, synchronization) may interleave
   freely, and the right interleaving is essential — e.g. the paper's
   landing counterexample needs the radio test read BEFORE the radio-off
   write that the run places before the approval. Replay is therefore a
   depth-first search over pick sequences, pruning any prefix whose
   emissions diverge from the target; each node replays its script from
   the initial state ([Tml.Vm.t] is not copyable). *)
let run ?(budget = 100_000) ~relevance ~image target =
  let steps_used = ref 0 in
  let ntarget = List.length target in
  let best_matched = ref 0 in
  let first_mismatch = ref None in
  (* Replays [picks] (in reverse order); returns the VM and how many
     target events matched, or None if emissions diverged. *)
  let replay rev_picks =
    let fresh = Queue.create () in
    let rev_script = ref [] in
    let sched =
      Tml.Sched.make_raw ~name:"replay"
        ~pick_fn:(fun _ -> assert false)
        ~choose_fn:(fun _ ->
          rev_script := Tml.Sched.Choice 0 :: !rev_script;
          0)
    in
    let vm = Tml.Vm.create ~relevance ~sink:(fun m -> Queue.add m fresh) ~sched image in
    let rev_emitted = ref [] in
    let rec consume expected =
      match Queue.take_opt fresh with
      | None -> Some expected
      | Some got -> (
          match expected with
          | e :: rest when same_event e got ->
              rev_emitted := got :: !rev_emitted;
              consume rest
          | e :: _ ->
              if !first_mismatch = None then
                first_mismatch := Some (Event_mismatch { expected = e; got });
              None
          | [] ->
              if !first_mismatch = None then first_mismatch := Some (Unexpected_event got);
              None)
    in
    let rec go expected = function
      | [] -> Some (vm, expected, List.rev !rev_script, List.rev !rev_emitted)
      | tid :: rest -> (
          incr steps_used;
          if !steps_used > budget then raise Out_of_budget;
          rev_script := Tml.Sched.Pick tid :: !rev_script;
          Tml.Vm.step vm tid;
          match consume expected with None -> None | Some expected -> go expected rest)
    in
    go target (List.rev rev_picks)
  in
  let rec dfs rev_picks =
    match replay rev_picks with
    | None -> () (* pruned *)
    | Some (vm, expected, script, emitted) ->
        let matched = ntarget - List.length expected in
        if matched > !best_matched then best_matched := matched;
        let runnable = Tml.Vm.runnable vm in
        if expected = [] && runnable = [] then
          raise (Found { script; result = Tml.Vm.result vm; emitted })
        else if runnable = [] then () (* dead end: blocked before finishing *)
        else List.iter (fun tid -> dfs (tid :: rev_picks)) runnable
  in
  try
    dfs [];
    match !first_mismatch with
    | Some f -> Error f
    | None -> Error (Stuck { remaining = ntarget - !best_matched })
  with
  | Found outcome -> Ok outcome
  | Out_of_budget -> Error Budget_exhausted

let replay_counterexample ?budget ~spec ~program (ce : Counterexample.counterexample) =
  let image = Tml.Instrument.instrument_program program in
  let relevance = Mvc.Relevance.writes_of_vars (Pastltl.Formula.vars spec) in
  run ?budget ~relevance ~image ce.Counterexample.run

let pp_failure ppf = function
  | Event_mismatch { expected; got } ->
      Format.fprintf ppf "event mismatch: expected %a, the program emitted %a" Message.pp
        expected Message.pp got
  | Unexpected_event got ->
      Format.fprintf ppf "unexpected relevant event after the run completed: %a"
        Message.pp got
  | Stuck { remaining } ->
      Format.fprintf ppf "stuck with %d target events remaining (blocked threads)"
        remaining
  | Budget_exhausted -> Format.pp_print_string ppf "step budget exhausted"
