(** Predictive atomicity-violation (block serializability) detection.

    The paper's causal abstraction supports more than state-property
    prediction; this module applies it to {e block atomicity}, the
    analysis line (jPredictor) that grew out of JMPaX. Every outermost
    [sync (l) { ... }] region is treated as a transaction. For two
    accesses [a1, a2] to the same variable inside one transaction and a
    {e remote} access [r] by another thread, the interleaving
    [a1; r; a2] is unserializable when the access kinds form one of the
    classic patterns (Lu et al.):

    - local read, remote {b write}, local read — stale re-read;
    - local write, remote {b write}, local read — lost local write;
    - local read, remote {b write}, local write — update from a stale read;
    - local write, remote {b read}, local write — dirty intermediate read.

    The violation is {e predicted} when [r] is causally concurrent
    (under the synchronization-only happens-before of {!Race}) with both
    [a1] and [a2] — some schedule of the observed computation places it
    between them, even if the observed run did not. A remote access
    protected by the same lock is ordered with the block and can never
    be flagged. *)

open Trace

type access_kind = Read | Write

type violation = {
  tid : Types.tid;  (** the transaction's thread *)
  lock : string;  (** the lock delimiting the transaction *)
  var : Types.var;
  first : int;  (** eid of [a1] *)
  second : int;  (** eid of [a2] *)
  remote : int;  (** eid of [r] *)
  remote_tid : Types.tid;
  pattern : access_kind * access_kind * access_kind;
      (** kinds of [a1], [r], [a2] *)
}

type report = {
  transactions : int;  (** outermost sync blocks analyzed *)
  violations : violation list;
}

val analyze : ?max_violations:int -> Exec.t -> report
(** [max_violations] defaults to [1000]. *)

val serializable : report -> bool
val pattern_name : access_kind * access_kind * access_kind -> string
val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
