lib/predict/lockgraph.mli: Exec Format Trace Types
