lib/predict/syncclock.ml: Array Event Hashtbl Trace Types Vclock
