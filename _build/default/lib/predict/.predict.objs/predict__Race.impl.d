lib/predict/race.ml: Array Event Exec Format Hashtbl List Option Set String Syncclock Trace Types Vclock
