lib/predict/analyzer.mli: Format Message Observer Pastltl Trace Types
