lib/predict/lockgraph.ml: Array Event Exec Format Hashtbl List Option Set String Trace Types
