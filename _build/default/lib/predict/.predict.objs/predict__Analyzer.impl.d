lib/predict/analyzer.ml: Array Format Hashtbl List Observer Pastltl Printf Set String
