lib/predict/atomicity.mli: Exec Format Trace Types
