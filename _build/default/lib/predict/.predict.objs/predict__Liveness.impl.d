lib/predict/liveness.ml: Array Format Hashtbl List Message Observer Pastltl Queue Trace
