lib/predict/syncclock.mli: Event Trace Types Vclock
