lib/predict/liveness.mli: Format Message Observer Pastltl Trace Types
