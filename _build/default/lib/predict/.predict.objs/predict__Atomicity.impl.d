lib/predict/atomicity.ml: Array Event Exec Format Hashtbl List Option String Syncclock Trace Types Vclock
