lib/predict/online.mli: Analyzer Message Pastltl Trace Types
