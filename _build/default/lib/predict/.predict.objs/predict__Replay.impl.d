lib/predict/replay.ml: Counterexample Format List Message Mvc Pastltl Queue Tml Trace
