lib/predict/counterexample.ml: Format List Message Observer Pastltl Trace
