lib/predict/replay.mli: Counterexample Format Message Mvc Pastltl Tml Trace
