lib/predict/race.mli: Exec Format Trace Types Vclock
