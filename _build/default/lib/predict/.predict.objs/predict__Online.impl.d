lib/predict/online.ml: Analyzer Array Hashtbl List Message Observer Pastltl Printf Set Trace Types Vclock
