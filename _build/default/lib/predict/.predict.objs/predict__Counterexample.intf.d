lib/predict/counterexample.mli: Format Message Observer Pastltl Trace Types
