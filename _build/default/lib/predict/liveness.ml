open Trace

type fformula =
  | FTrue
  | FFalse
  | FAtom of Pastltl.Predicate.t
  | FNot of fformula
  | FAnd of fformula * fformula
  | FOr of fformula * fformula
  | FNext of fformula
  | FEventually of fformula
  | FAlways of fformula
  | FUntil of fformula * fformula

let eval_lasso formula ~prefix ~cycle =
  if cycle = [] then invalid_arg "Liveness.eval_lasso: empty cycle";
  let arr = Array.of_list (prefix @ cycle) in
  let m = Array.length arr in
  let p = List.length prefix in
  let succ i = if i = m - 1 then p else i + 1 in
  let rec table f =
    match f with
    | FTrue -> Array.make m true
    | FFalse -> Array.make m false
    | FAtom pr -> Array.map (Pastltl.Predicate.holds pr) arr
    | FNot g -> Array.map not (table g)
    | FAnd (g, h) -> Array.map2 ( && ) (table g) (table h)
    | FOr (g, h) -> Array.map2 ( || ) (table g) (table h)
    | FNext g ->
        let tg = table g in
        Array.init m (fun i -> tg.(succ i))
    | FEventually g ->
        let tg = table g in
        let cycle_has = ref false in
        for j = p to m - 1 do
          if tg.(j) then cycle_has := true
        done;
        let out = Array.make m !cycle_has in
        (* Positions also see the finite suffix up to the end of arr. *)
        let suffix_has = ref false in
        for i = m - 1 downto 0 do
          if tg.(i) then suffix_has := true;
          out.(i) <- out.(i) || !suffix_has
        done;
        out
    | FAlways g ->
        let tg = table g in
        let cycle_all = ref true in
        for j = p to m - 1 do
          if not tg.(j) then cycle_all := false
        done;
        let out = Array.make m !cycle_all in
        let suffix_all = ref true in
        for i = m - 1 downto 0 do
          if not tg.(i) then suffix_all := false;
          out.(i) <- out.(i) && !suffix_all
        done;
        out
    | FUntil (g, h) ->
        let tg = table g and th = table h in
        let out = Array.make m false in
        (* Least fixpoint on the cycle: backward passes until stable. *)
        let changed = ref true in
        while !changed do
          changed := false;
          for i = m - 1 downto p do
            let v = th.(i) || (tg.(i) && out.(succ i)) in
            if v <> out.(i) then begin
              out.(i) <- v;
              changed := true
            end
          done
        done;
        for i = p - 1 downto 0 do
          out.(i) <- th.(i) || (tg.(i) && out.(i + 1))
        done;
        out
  in
  let values = table formula in
  values.(0)

type lasso = {
  prefix : Message.t list;
  cycle : Message.t list;
  prefix_states : Pastltl.State.t list;
  cycle_states : Pastltl.State.t list;
}

(* Shortest event path between two lattice nodes, by BFS over
   successors; [None] when unreachable. *)
let path_between lattice (a : Observer.Lattice.node) (b : Observer.Lattice.node) =
  if a.Observer.Lattice.id = b.Observer.Lattice.id then Some []
  else begin
    let parent = Hashtbl.create 16 in
    let queue = Queue.create () in
    Queue.add a queue;
    Hashtbl.replace parent a.Observer.Lattice.id None;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let n = Queue.pop queue in
      List.iter
        (fun (msg, n') ->
          let id' = n'.Observer.Lattice.id in
          if not (Hashtbl.mem parent id') then begin
            Hashtbl.replace parent id' (Some (n.Observer.Lattice.id, msg));
            if id' = b.Observer.Lattice.id then found := true
            else Queue.add n' queue
          end)
        (Observer.Lattice.successors lattice n)
    done;
    if not !found then None
    else begin
      let rec walk id acc =
        match Hashtbl.find parent id with
        | None -> acc
        | Some (prev, msg) -> walk prev (msg :: acc)
      in
      Some (walk b.Observer.Lattice.id [])
    end
  end

let states_along lattice start_state path =
  ignore lattice;
  let rec go state acc = function
    | [] -> List.rev acc
    | m :: rest ->
        let state' = Observer.Computation.apply state m in
        go state' (state' :: acc) rest
  in
  go start_state [] path

let find_lassos ?(max_lassos = 200) lattice =
  let nodes = Observer.Lattice.nodes lattice in
  let bottom = Observer.Lattice.bottom lattice in
  let out = ref [] in
  let count = ref 0 in
  let consider (a : Observer.Lattice.node) (b : Observer.Lattice.node) =
    if
      !count < max_lassos
      && a.Observer.Lattice.id <> b.Observer.Lattice.id
      && a.Observer.Lattice.level < b.Observer.Lattice.level
      && Pastltl.State.equal a.Observer.Lattice.state b.Observer.Lattice.state
    then
      match path_between lattice a b with
      | None -> ()
      | Some cycle_path -> (
          match path_between lattice bottom a with
          | None -> ()
          | Some prefix_path ->
              incr count;
              let init = Observer.Computation.init_state (Observer.Lattice.computation lattice) in
              let prefix_states = init :: states_along lattice init prefix_path in
              let cycle_states =
                states_along lattice a.Observer.Lattice.state cycle_path
              in
              out :=
                { prefix = prefix_path; cycle = cycle_path; prefix_states; cycle_states }
                :: !out)
  in
  List.iter (fun a -> List.iter (fun b -> consider a b) nodes) nodes;
  List.rev !out

let check ?max_lassos ~spec lattice =
  let lassos = find_lassos ?max_lassos lattice in
  List.find_opt
    (fun l -> not (eval_lasso spec ~prefix:l.prefix_states ~cycle:l.cycle_states))
    lassos

let rec pp_fformula ppf = function
  | FTrue -> Format.pp_print_string ppf "true"
  | FFalse -> Format.pp_print_string ppf "false"
  | FAtom p -> Pastltl.Predicate.pp ppf p
  | FNot f -> Format.fprintf ppf "!(%a)" pp_fformula f
  | FAnd (f, g) -> Format.fprintf ppf "(%a and %a)" pp_fformula f pp_fformula g
  | FOr (f, g) -> Format.fprintf ppf "(%a or %a)" pp_fformula f pp_fformula g
  | FNext f -> Format.fprintf ppf "X (%a)" pp_fformula f
  | FEventually f -> Format.fprintf ppf "F (%a)" pp_fformula f
  | FAlways f -> Format.fprintf ppf "G (%a)" pp_fformula f
  | FUntil (f, g) -> Format.fprintf ppf "(%a U %a)" pp_fformula f pp_fformula g

let pp_lasso ~vars ppf l =
  let pp_states = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
      (Pastltl.State.pp_values ~vars)
  in
  Format.fprintf ppf "@[<v>lasso u (%d events): %a@,cycle v (%d events): %a (repeats forever)@]"
    (List.length l.prefix) pp_states l.prefix_states (List.length l.cycle) pp_states
    l.cycle_states
