open Trace

type access_kind = Read | Write

type violation = {
  tid : Types.tid;
  lock : string;
  var : Types.var;
  first : int;
  second : int;
  remote : int;
  remote_tid : Types.tid;
  pattern : access_kind * access_kind * access_kind;
}

type report = {
  transactions : int;
  violations : violation list;
}

type access = {
  a_eid : int;
  a_tid : Types.tid;
  a_var : Types.var;
  a_kind : access_kind;
  a_vc : Vclock.t;
  a_block : (int * string) option;  (* transaction id and its first lock *)
}

let lock_name x =
  let prefix = "#lock:" in
  if String.length x > String.length prefix
     && String.sub x 0 (String.length prefix) = prefix
  then Some (String.sub x (String.length prefix) (String.length x - String.length prefix))
  else None

(* a1; r; a2 with r remote: the four unserializable triples. *)
let unserializable = function
  | Read, Write, Read -> true  (* stale re-read *)
  | Write, Write, Read -> true  (* lost local write *)
  | Read, Write, Write -> true  (* update from a stale read *)
  | Write, Read, Write -> true  (* dirty intermediate read *)
  | (Read | Write), _, (Read | Write) -> false

let analyze ?(max_violations = 1000) exec =
  let nthreads = Exec.nthreads exec in
  let clocks = Syncclock.create ~nthreads in
  (* Per-thread lock-nesting depth, the label of the current outermost
     block, and a global transaction counter. *)
  let depth = Array.make nthreads 0 in
  let current = Array.make nthreads None in
  let transactions = ref 0 in
  let rev_accesses = ref [] in
  Array.iter
    (fun (e : Event.t) ->
      (* Track lock regions before the clock update so the acquire event
         itself opens the block. *)
      (match e.kind with
      | Event.Write (x, v) -> (
          match lock_name x with
          | Some l ->
              if v = 1 then begin
                if depth.(e.tid) = 0 then begin
                  incr transactions;
                  current.(e.tid) <- Some (!transactions, l)
                end;
                depth.(e.tid) <- depth.(e.tid) + 1
              end
              else begin
                depth.(e.tid) <- max 0 (depth.(e.tid) - 1);
                if depth.(e.tid) = 0 then current.(e.tid) <- None
              end
          | None -> ())
      | Event.Read _ | Event.Internal -> ());
      match Syncclock.observe clocks e with
      | None -> ()
      | Some vc ->
          rev_accesses :=
            { a_eid = e.eid;
              a_tid = e.tid;
              a_var = Option.get (Event.variable e);
              a_kind = (if Event.is_write e then Write else Read);
              a_vc = vc;
              a_block = current.(e.tid) }
            :: !rev_accesses)
    (Exec.events exec);
  let accesses = List.rev !rev_accesses in
  (* Group block-local accesses by (block, var), keeping order. *)
  let by_block_var : (int * string * Types.var, access list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun a ->
      match a.a_block with
      | None -> ()
      | Some (block, lock) ->
          let key = (block, lock, a.a_var) in
          let bucket =
            match Hashtbl.find_opt by_block_var key with
            | Some b -> b
            | None ->
                let b = ref [] in
                Hashtbl.replace by_block_var key b;
                b
          in
          bucket := a :: !bucket)
    accesses;
  let violations = ref [] in
  let count = ref 0 in
  Hashtbl.iter
    (fun (_, lock, var) bucket ->
      let locals = List.rev !bucket in
      (* All ordered local pairs: a remote access concurrent with both
         ends can land anywhere between them, so non-adjacent pairs
         (e.g. two writes separated by a local read) matter too. *)
      let triple a1 a2 =
        List.iter
          (fun (r : access) ->
            if
              r.a_tid <> a1.a_tid && r.a_var = var
              && unserializable (a1.a_kind, r.a_kind, a2.a_kind)
              && Vclock.concurrent r.a_vc a1.a_vc
              && Vclock.concurrent r.a_vc a2.a_vc
              && !count < max_violations
            then begin
              incr count;
              violations :=
                { tid = a1.a_tid; lock; var; first = a1.a_eid; second = a2.a_eid;
                  remote = r.a_eid; remote_tid = r.a_tid;
                  pattern = (a1.a_kind, r.a_kind, a2.a_kind) }
                :: !violations
            end)
          accesses
      in
      let rec pairs = function
        | a1 :: (_ :: _ as rest) ->
            List.iter (triple a1) rest;
            pairs rest
        | [ _ ] | [] -> ()
      in
      pairs locals)
    by_block_var;
  { transactions = !transactions;
    violations =
      List.sort (fun a b -> compare (a.first, a.remote) (b.first, b.remote)) !violations }

let serializable r = r.violations = []

let pattern_name = function
  | Read, Write, Read -> "stale re-read (R-W-R)"
  | Write, Write, Read -> "lost local write (W-W-R)"
  | Read, Write, Write -> "update from stale read (R-W-W)"
  | Write, Read, Write -> "dirty intermediate read (W-R-W)"
  | _ -> "serializable"

let pp_violation ppf v =
  Format.fprintf ppf
    "atomicity violation in %a's sync(%s) block on %s: %s — e%d .. e%d with remote e%d \
     by %a"
    Types.pp_tid v.tid v.lock v.var (pattern_name v.pattern) v.first v.second v.remote
    Types.pp_tid v.remote_tid

let pp_report ppf r =
  match r.violations with
  | [] ->
      Format.fprintf ppf "all %d sync blocks serializable under every schedule"
        r.transactions
  | vs ->
      Format.fprintf ppf "@[<v>%d atomicity violations over %d sync blocks@,%a@]"
        (List.length vs) r.transactions
        (Format.pp_print_list pp_violation)
        vs
