(** Synchronization-only vector clocks, shared by the predictive race
    and atomicity analyses.

    Every event advances its thread's own component (so accesses are
    distinct points in the causal order), but cross-thread edges come
    only from the dummy synchronization variables of Section 3.1 — data
    accesses contribute no edges, otherwise the conflicting pair under
    test would order itself. *)

open Trace

type t

val create : nthreads:int -> t

val observe : t -> Event.t -> Vclock.t option
(** Advances the clocks for one event. Returns [Some vc] — the thread's
    clock at that point — for {e data} accesses (the points the analyses
    compare), [None] for internal events and synchronization traffic. *)

val clock : t -> Types.tid -> Vclock.t
