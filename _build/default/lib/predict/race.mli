(** Predictive data-race detection.

    Uses the MVC machinery with the {e synchronization-only} causality:
    thread order plus lock/notify dummy-variable writes (paper,
    Section 3.1). Data accesses do not themselves create causal edges —
    otherwise the two halves of a candidate race would order each other —
    so two accesses to the same data variable, at least one a write,
    whose clocks are concurrent constitute a race that {e some} schedule
    can realize, even if the observed run ordered them safely. This is
    the data-race instantiation of the paper's prediction idea (its
    Section 1 names data-races as the motivating class). *)

open Trace

type access = {
  eid : int;
  tid : Types.tid;
  var : Types.var;
  is_write : bool;
  vc : Vclock.t;  (** sync-only vector clock at the access *)
}

type race = { first : access; second : access }
(** Ordered by observed position; clocks are concurrent. *)

type report = {
  races : race list;
  racy_vars : Types.var list;  (** distinct data variables involved, sorted *)
  accesses : int;  (** data accesses examined *)
}

val detect : ?max_races:int -> Exec.t -> report
(** Replays a recorded execution; [max_races] (default [10_000]) caps the
    pair list (detection still fills [racy_vars]). *)

val race_free : report -> bool
val pp_race : Format.formatter -> race -> unit
val pp_report : Format.formatter -> report -> unit
