open Trace

type edge = { held : string; acquired : string; tid : Types.tid; eid : int }

type report = {
  locks : string list;
  edges : edge list;
  cycles : string list list;
}

let lock_name x =
  let prefix = "#lock:" in
  if String.length x > String.length prefix
     && String.sub x 0 (String.length prefix) = prefix
  then Some (String.sub x (String.length prefix) (String.length x - String.length prefix))
  else None

module Sset = Set.Make (String)

let canonical_rotation cycle =
  (* Rotate a lock cycle so its smallest element comes first, for
     deduplication. *)
  let arr = Array.of_list cycle in
  let n = Array.length arr in
  let best = ref 0 in
  for i = 1 to n - 1 do
    if arr.(i) < arr.(!best) then best := i
  done;
  List.init n (fun i -> arr.((!best + i) mod n))

let find_cycles edges =
  (* Adjacency with the set of threads witnessing each edge. *)
  let adj : (string, (string * int list) list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let outs = Option.value ~default:[] (Hashtbl.find_opt adj e.held) in
      let outs =
        match List.assoc_opt e.acquired outs with
        | Some tids when List.mem e.tid tids -> outs
        | Some tids ->
            (e.acquired, e.tid :: tids) :: List.remove_assoc e.acquired outs
        | None -> (e.acquired, [ e.tid ]) :: outs
      in
      Hashtbl.replace adj e.held outs)
    edges;
  let nodes = Hashtbl.fold (fun l _ acc -> l :: acc) adj [] |> List.sort_uniq compare in
  let cycles = ref [] in
  let max_cycles = 100 and max_len = 8 in
  (* Enumerate simple cycles by DFS from each start node, keeping only
     cycles whose smallest lock is the start (canonical), and whose edges
     are not all from one thread. *)
  let rec dfs start path path_tids node =
    if List.length !cycles < max_cycles && List.length path <= max_len then
      List.iter
        (fun (next, tids) ->
          if next = start then begin
            let involved = List.sort_uniq compare (tids @ path_tids) in
            if List.length involved >= 2 then begin
              let cycle = canonical_rotation (List.rev (node :: path)) in
              if not (List.mem cycle !cycles) then cycles := cycle :: !cycles
            end
          end
          else if next > start && not (List.mem next (node :: path)) then
            dfs start (node :: path) (tids @ path_tids) next)
        (Option.value ~default:[] (Hashtbl.find_opt adj node))
  in
  List.iter (fun start -> dfs start [] [] start) nodes;
  List.rev !cycles

let analyze exec =
  let n = Exec.nthreads exec in
  let held = Array.init n (fun _ -> Hashtbl.create 4) in
  let edges = ref [] in
  let locks = ref Sset.empty in
  Array.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Write (x, v) -> (
          match lock_name x with
          | None -> ()
          | Some l ->
              locks := Sset.add l !locks;
              let table = held.(e.tid) in
              if v = 1 then begin
                (* Acquire: one edge from every currently held lock. *)
                if not (Hashtbl.mem table l) then
                  Hashtbl.iter
                    (fun other _ ->
                      edges := { held = other; acquired = l; tid = e.tid; eid = e.eid } :: !edges)
                    table;
                Hashtbl.replace table l
                  (1 + Option.value ~default:0 (Hashtbl.find_opt table l))
              end
              else begin
                match Hashtbl.find_opt table l with
                | Some 1 -> Hashtbl.remove table l
                | Some k when k > 1 -> Hashtbl.replace table l (k - 1)
                | _ -> invalid_arg "Lockgraph.analyze: release of a lock not held"
              end)
      | Event.Read _ | Event.Internal -> ())
    (Exec.events exec);
  let edges = List.rev !edges in
  { locks = Sset.elements !locks; edges; cycles = find_cycles edges }

let deadlock_free r = r.cycles = []

let pp_report ppf r =
  Format.fprintf ppf "@[<v>locks: {%s}, %d hold-acquire edges@,"
    (String.concat ", " r.locks) (List.length r.edges);
  (match r.cycles with
  | [] -> Format.fprintf ppf "no lock-order cycles: deadlock-free@]"
  | cycles ->
      Format.fprintf ppf "potential deadlocks:@,";
      List.iter
        (fun c -> Format.fprintf ppf "  cycle: %s@," (String.concat " -> " (c @ [ List.hd c ])))
        cycles;
      Format.fprintf ppf "@]")
