open Trace

type t = {
  vi : Vclock.t array;
  va : (Types.var, Vclock.t) Hashtbl.t;
  vw : (Types.var, Vclock.t) Hashtbl.t;
}

let create ~nthreads =
  { vi = Array.init nthreads (fun _ -> Vclock.zero nthreads);
    va = Hashtbl.create 8;
    vw = Hashtbl.create 8 }

let n t = Array.length t.vi

let var_clock t table x =
  match Hashtbl.find_opt table x with Some v -> v | None -> Vclock.zero (n t)

let tick t tid = t.vi.(tid) <- Vclock.inc t.vi.(tid) tid

let sync_write t tid x =
  let v = Vclock.max (var_clock t t.va x) t.vi.(tid) in
  t.vi.(tid) <- v;
  Hashtbl.replace t.va x v;
  Hashtbl.replace t.vw x v

let sync_read t tid x =
  t.vi.(tid) <- Vclock.max t.vi.(tid) (var_clock t t.vw x);
  Hashtbl.replace t.va x (Vclock.max (var_clock t t.va x) t.vi.(tid))

let observe t (e : Event.t) =
  match e.kind with
  | Event.Internal -> None
  | Event.Read (x, _) when Types.is_sync_var x ->
      tick t e.tid;
      sync_read t e.tid x;
      None
  | Event.Write (x, _) when Types.is_sync_var x ->
      tick t e.tid;
      sync_write t e.tid x;
      None
  | Event.Read _ | Event.Write _ ->
      tick t e.tid;
      Some t.vi.(e.tid)

let clock t tid = t.vi.(tid)
