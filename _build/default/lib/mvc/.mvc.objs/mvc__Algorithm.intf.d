lib/mvc/algorithm.mli: Event Relevance Trace Types Vclock
