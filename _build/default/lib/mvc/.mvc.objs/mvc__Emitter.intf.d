lib/mvc/emitter.mli: Algorithm Exec Message Relevance Trace Types
