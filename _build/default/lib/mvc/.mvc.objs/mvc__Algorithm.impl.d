lib/mvc/algorithm.ml: Array Event Hashtbl Relevance Trace Types Vclock
