lib/mvc/relevance.mli: Event Trace Types
