lib/mvc/dynamic.mli: Dvclock Event Relevance Trace Types
