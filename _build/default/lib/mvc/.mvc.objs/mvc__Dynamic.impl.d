lib/mvc/dynamic.ml: Dvclock Event Hashtbl List Relevance Trace Types
