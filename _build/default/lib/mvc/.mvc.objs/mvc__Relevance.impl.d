lib/mvc/relevance.ml: Event List String Trace Types
