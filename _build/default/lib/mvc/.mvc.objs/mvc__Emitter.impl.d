lib/mvc/emitter.ml: Algorithm Event Exec List Message Trace
