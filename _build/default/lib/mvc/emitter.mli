(** Instrumentation runtime: couples Algorithm A with the event log.

    The TML virtual machine calls {!on_internal}, {!on_read} and
    {!on_write} from its instrumentation hooks. The emitter records the
    flat observed execution (for oracles and for the JPaX baseline),
    drives Algorithm A, and forwards messages [⟨e, i, V⟩] for relevant
    events to the observer-side sink, exactly as JMPaX's instrumented
    bytecode writes to its socket (paper, Section 4.1). *)

open Trace

type t

val create :
  nthreads:int ->
  init:(Types.var * Types.value) list ->
  relevance:Relevance.t ->
  ?sink:(Message.t -> unit) ->
  unit ->
  t
(** [sink] is invoked synchronously for every emitted message; defaults
    to a no-op (messages are still accumulated and returned by
    {!finish}). *)

val on_internal : t -> Types.tid -> unit
val on_read : t -> Types.tid -> Types.var -> Types.value -> unit
val on_write : t -> Types.tid -> Types.var -> Types.value -> unit

val algorithm : t -> Algorithm.t
(** The underlying MVC state (live; useful for assertions in tests). *)

val message_count : t -> int

val finish : t -> Exec.t * Message.t list
(** The recorded execution and all emitted messages, in emission order.
    The emitter can keep being used afterwards; [finish] snapshots. *)
