lib/dsim/simulate.mli: Exec Mvc Trace Vclock
