lib/dsim/network.mli: Process Trace Types Vclock
