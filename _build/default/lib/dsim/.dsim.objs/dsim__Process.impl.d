lib/dsim/process.ml: Format Trace Types Vclock
