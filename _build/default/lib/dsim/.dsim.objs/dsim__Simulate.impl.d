lib/dsim/simulate.ml: Array Event Exec List Mvc Network Printf Process Trace Vclock
