lib/dsim/network.ml: Hashtbl Process Queue Trace Types Vclock
