lib/dsim/process.mli: Format Trace Types Vclock
