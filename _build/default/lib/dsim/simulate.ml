open Trace

type stats = {
  events : int;
  packets : int;
  hidden : int;
  emitted : (int * Vclock.t) list;
}

let inject network relevance (e : Event.t) =
  let thread = Network.process network (Process.Thread e.tid) in
  if Mvc.Relevance.is_relevant relevance e.kind then Process.bump thread e.tid;
  (match e.kind with
  | Event.Internal -> ()
  | Event.Read (x, _) ->
      Network.send network
        { src = Process.pid thread; dst = Process.Access x;
          clock = Process.clock thread; protocol = Network.Read_request;
          on_behalf_of = e.tid }
  | Event.Write (x, _) ->
      Network.send network
        { src = Process.pid thread; dst = Process.Access x;
          clock = Process.clock thread; protocol = Network.Write_request;
          on_behalf_of = e.tid });
  ignore (Network.deliver_all network);
  if Mvc.Relevance.is_relevant relevance e.kind then
    Some (e.eid, Process.clock thread)
  else None

let run ~relevance exec =
  let network = Network.create ~nthreads:(Exec.nthreads exec) in
  let emitted = ref [] in
  Array.iter
    (fun e ->
      match inject network relevance e with
      | Some entry -> emitted := entry :: !emitted
      | None -> ())
    (Exec.events exec);
  { events = Exec.length exec;
    packets = Network.packets_sent network;
    hidden = Network.hidden_sent network;
    emitted = List.rev !emitted }

type divergence = {
  eid : int;
  where : string;
  network : Vclock.t;
  algorithm : Vclock.t;
}

let compare_with_algorithm ~relevance exec =
  let n = Exec.nthreads exec in
  let network = Network.create ~nthreads:n in
  let algo = Mvc.Algorithm.create ~nthreads:n ~relevance in
  let emitted = ref [] in
  let divergence = ref None in
  let check eid where net alg =
    if !divergence = None && not (Vclock.equal net alg) then
      divergence := Some { eid; where; network = net; algorithm = alg }
  in
  Array.iter
    (fun (e : Event.t) ->
      if !divergence = None then begin
        (match inject network relevance e with
        | Some entry -> emitted := entry :: !emitted
        | None -> ());
        ignore (Mvc.Algorithm.process algo e.tid e.kind);
        let thread = Network.process network (Process.Thread e.tid) in
        check e.eid
          (Printf.sprintf "V_%d" e.tid)
          (Process.clock thread)
          (Mvc.Algorithm.thread_clock algo e.tid);
        match Event.variable e with
        | None -> ()
        | Some x ->
            check e.eid
              (Printf.sprintf "V^a_%s" x)
              (Process.clock (Network.process network (Process.Access x)))
              (Mvc.Algorithm.access_clock algo x);
            check e.eid
              (Printf.sprintf "V^w_%s" x)
              (Process.clock (Network.process network (Process.Writer x)))
              (Mvc.Algorithm.write_clock algo x)
      end)
    (Exec.events exec);
  match !divergence with
  | Some d -> Error d
  | None ->
      Ok
        { events = Exec.length exec;
          packets = Network.packets_sent network;
          hidden = Network.hidden_sent network;
          emitted = List.rev !emitted }
