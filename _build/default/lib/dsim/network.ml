open Trace

type protocol =
  | Write_request
  | Read_request
  | Hidden_forward
  | Ack

type packet = {
  src : Process.pid;
  dst : Process.pid;
  clock : Vclock.t;
  protocol : protocol;
  on_behalf_of : Types.tid;
}

type t = {
  nthreads : int;
  procs : (Process.pid, Process.t) Hashtbl.t;
  queue : packet Queue.t;
  mutable sent : int;
  mutable hidden : int;
}

let create ~nthreads =
  if nthreads <= 0 then invalid_arg "Network.create: nthreads must be positive";
  { nthreads; procs = Hashtbl.create 16; queue = Queue.create (); sent = 0; hidden = 0 }

let dim t = t.nthreads

let process t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p
  | None ->
      let p = Process.create pid ~dim:t.nthreads in
      Hashtbl.replace t.procs pid p;
      p

let send t packet =
  t.sent <- t.sent + 1;
  if packet.protocol = Hidden_forward then t.hidden <- t.hidden + 1;
  Queue.add packet t.queue

let deliver t packet =
  let dst = process t packet.dst in
  let i = packet.on_behalf_of in
  match packet.protocol with
  | Write_request -> (
      Process.merge dst packet.clock;
      match packet.dst with
      | Process.Access x ->
          send t
            { src = packet.dst; dst = Process.Writer x; clock = Process.clock dst;
              protocol = Write_request; on_behalf_of = i }
      | Process.Writer _ ->
          send t
            { src = packet.dst; dst = Process.Thread i; clock = Process.clock dst;
              protocol = Ack; on_behalf_of = i }
      | Process.Thread _ -> assert false)
  | Read_request -> (
      Process.merge dst packet.clock;
      match packet.dst with
      | Process.Access x ->
          (* The dotted arrow: no clock travels into x^w. *)
          send t
            { src = packet.dst; dst = Process.Writer x; clock = Process.clock dst;
              protocol = Hidden_forward; on_behalf_of = i }
      | Process.Writer _ | Process.Thread _ -> assert false)
  | Hidden_forward ->
      (* x^w's clock is deliberately not updated; it only acknowledges. *)
      send t
        { src = packet.dst; dst = Process.Thread i; clock = Process.clock dst;
          protocol = Ack; on_behalf_of = i }
  | Ack -> Process.merge dst packet.clock

let deliver_all t =
  let count = ref 0 in
  while not (Queue.is_empty t.queue) do
    incr count;
    deliver t (Queue.pop t.queue)
  done;
  !count

let packets_sent t = t.sent
let hidden_sent t = t.hidden
