(** Driving the Section 3.2 interpretation over a recorded execution and
    checking it against Algorithm A.

    The paper's claim is that the MVC algorithm is {e almost} the
    standard vector-clock algorithm on the derived process network — the
    one deviation being the hidden read message. This module replays an
    execution through both and compares every clock after every event;
    they must agree exactly. *)

open Trace

type stats = {
  events : int;
  packets : int;  (** total protocol messages exchanged *)
  hidden : int;  (** hidden (dotted) messages — one per read *)
  emitted : (int * Vclock.t) list;
      (** (eid, thread clock) for each relevant event, in order *)
}

val run : relevance:Mvc.Relevance.t -> Exec.t -> stats
(** Replays the execution through the process network alone. *)

type divergence = {
  eid : int;
  where : string;  (** which clock diverged, e.g. ["V_2"] or ["V^w_x"] *)
  network : Vclock.t;
  algorithm : Vclock.t;
}

val compare_with_algorithm :
  relevance:Mvc.Relevance.t -> Exec.t -> (stats, divergence) result
(** Runs the network and Algorithm A side by side, comparing the thread
    clock, [V{^a}{_x}] and [V{^w}{_x}] after every event. [Ok] means the
    interpretation reproduces Algorithm A exactly. *)
