open Trace

type pid =
  | Thread of Types.tid
  | Access of Types.var
  | Writer of Types.var

type t = { pid : pid; mutable vc : Vclock.t }

let create pid ~dim = { pid; vc = Vclock.zero dim }
let pid t = t.pid
let clock t = t.vc
let merge t v = t.vc <- Vclock.max t.vc v

let bump t i =
  match t.pid with
  | Thread j when j = i -> t.vc <- Vclock.inc t.vc i
  | Thread _ | Access _ | Writer _ ->
      invalid_arg "Process.bump: only a thread bumps its own component"

let equal_pid (a : pid) (b : pid) = a = b

let pp_pid ppf = function
  | Thread i -> Types.pp_tid ppf i
  | Access x -> Format.fprintf ppf "%s^a" x
  | Writer x -> Format.fprintf ppf "%s^w" x
