(** Processes of the distributed-systems interpretation (paper,
    Section 3.2, Fig. 3).

    Each thread [t_i] is a process, and each shared variable [x]
    contributes an {e access process} [x{^a}] and a {e write process}
    [x{^w}]. Causality then flows through vector clocks piggybacked on
    messages, as in classic distributed-systems algorithms, except for
    the {e hidden} message of a read (see {!Network}). *)

open Trace

type pid =
  | Thread of Types.tid
  | Access of Types.var  (** the [x{^a}] process *)
  | Writer of Types.var  (** the [x{^w}] process *)

type t

val create : pid -> dim:int -> t
val pid : t -> pid
val clock : t -> Vclock.t

val merge : t -> Vclock.t -> unit
(** Receive a (visible) message carrying a clock: [vc <- max vc msg]. *)

val bump : t -> Types.tid -> unit
(** Step 1 of Algorithm A: a relevant event increments the thread's own
    component. Only meaningful for [Thread] pids.
    @raise Invalid_argument otherwise. *)

val equal_pid : pid -> pid -> bool
val pp_pid : Format.formatter -> pid -> unit
