(** The message fabric of the Section 3.2 interpretation.

    Reads and writes become little protocols (paper, Fig. 3):

    - {b write x by i}: [i ──req──> x{^a} ──req──> x{^w} ──ack──> i],
      every message visible (clock-carrying and clock-merging);
    - {b read x by i}: [i ──req──> x{^a}], then a {e hidden} message
      [x{^a} ──▸ x{^w}] that does {e not} update [x{^w}]'s clock — this
      is what keeps reads permutable — whose only role is to make
      [x{^w}] send its clock back as [x{^w} ──ack──> i].

    Messages are delivered FIFO; each protocol instance runs to
    completion before the next event is injected, matching the atomicity
    of shared accesses in the memory model. *)

open Trace

type protocol =
  | Write_request  (** clock-merging request hop *)
  | Read_request  (** request hop of a read *)
  | Hidden_forward  (** the dotted arrow of Fig. 3 *)
  | Ack

type packet = {
  src : Process.pid;
  dst : Process.pid;
  clock : Vclock.t;  (** the sender's clock at send time *)
  protocol : protocol;
  on_behalf_of : Types.tid;  (** the accessing thread, to route the ack *)
}

type t

val create : nthreads:int -> t
val dim : t -> int

val process : t -> Process.pid -> Process.t
(** Lazily creates variable processes. *)

val send : t -> packet -> unit

val deliver_all : t -> int
(** Runs the delivery loop until the fabric is quiet; returns the number
    of packets delivered. *)

val packets_sent : t -> int
val hidden_sent : t -> int
